#include "amr/AmrCore.hpp"

#include "amr/BoxList.hpp"
#include "amr/CommCache.hpp"

#include <cassert>

namespace crocco::amr {

BoxArray makeLevel0Grids(const Box& domain, const AmrInfo& info) {
    assert(domain.coarsenable(IntVect(info.blockingFactor)));
    auto boxes = chopToMaxSize({domain}, IntVect(info.maxGridSize));
    boxes = refineToBlockingFactor(std::move(boxes), info.blockingFactor);
    return BoxArray(std::move(boxes));
}

AmrCore::AmrCore(const Geometry& geom0, const AmrInfo& info, int nranks,
                 parallel::SimComm* comm)
    : info_(info), nranks_(nranks), comm_(comm) {
    assert(info.maxLevel >= 0);
    assert(info.blockingFactor % info.refRatio.max() == 0);
    assert(info.maxGridSize % info.blockingFactor == 0);
    geom_.resize(info.maxLevel + 1);
    grids_.resize(info.maxLevel + 1);
    dmap_.resize(info.maxLevel + 1);
    geom_[0] = geom0;
    for (int lev = 1; lev <= info.maxLevel; ++lev)
        geom_[lev] = geom_[lev - 1].refine(info.refRatio);
}

std::int64_t AmrCore::totalPoints() const {
    std::int64_t n = 0;
    for (int lev = 0; lev <= finestLevel_; ++lev) n += grids_[lev].numPts();
    return n;
}

std::int64_t AmrCore::equivalentPoints() const {
    std::int64_t n = geom_[0].domain().numPts();
    for (int lev = 1; lev <= info_.maxLevel; ++lev) n *= info_.refRatio.product();
    return n;
}

void AmrCore::setLevel(int lev, const BoxArray& ba, const DistributionMapping& dm) {
    // A replaced layout retires its comm patterns: regrid (and checkpoint
    // restore) is the explicit CommCache invalidation point, so a changed
    // BoxArray can never replay the old level's ghost-exchange descriptors.
    if (!grids_[lev].empty() && grids_[lev].id() != ba.id())
        CommCache::instance().invalidate(grids_[lev].id());
    grids_[lev] = ba;
    dmap_[lev] = dm;
}

BoxArray AmrCore::makeNewGrids(int lev, Real time) {
    const int clev = lev - 1; // tags live on the coarser level
    std::vector<IntVect> tags;
    errorEst(clev, tags, time);
    if (tags.empty()) return {};
    tags = bufferTags(tags, info_.nErrorBuf, geom_[clev].domain());

    ClusterParams cp;
    cp.minEfficiency = info_.gridEff;
    auto boxes = bergerRigoutsos(tags, cp);

    // Fine boxes must be blocking-factor aligned; in the coarse index space
    // that means alignment to bf / ratio.
    const int align = info_.blockingFactor / info_.refRatio.max();
    assert(align >= 1);
    boxes = refineToBlockingFactor(std::move(boxes), align);
    for (Box& b : boxes) b = b & geom_[clev].domain();

    // Proper nesting: keep the new level properNestingBuffer coarse cells
    // away from any in-domain region the parent level does not cover, so
    // FillPatchTwoLevels never needs data from below the parent.
    if (clev > 0) {
        std::vector<Box> grownHoles;
        for (const Box& hole : grids_[clev].complementIn(geom_[clev].domain()))
            grownHoles.push_back(hole.grow(info_.properNestingBuffer));
        std::vector<Box> nested;
        for (const Box& b : boxes)
            for (const Box& piece : boxDiff(b, grownHoles))
                nested.push_back(piece);
        boxes = std::move(nested);
    }

    boxes = chopToMaxSize(std::move(boxes), IntVect(info_.maxGridSize /
                                                    info_.refRatio.min()));
    boxes = refineToBlockingFactor(std::move(boxes), align);
    for (Box& b : boxes) b = b & geom_[clev].domain();

    // The blocking-factor rounding can make neighbors overlap; patches must
    // be disjoint, so keep each region exactly once by subtracting the boxes
    // already accepted. (Pieces may lose exact alignment, which only the
    // rounding step cares about; disjointness is the hard invariant.)
    std::vector<Box> unique;
    for (const Box& b : boxes)
        for (const Box& piece : boxDiff(b, unique))
            unique.push_back(piece);

    std::vector<Box> fine;
    fine.reserve(unique.size());
    for (const Box& b : unique) fine.push_back(b.refine(info_.refRatio));
    if (fine.empty()) return {};
    return BoxArray(std::move(fine));
}

void AmrCore::initGrids(Real time) {
    const BoxArray ba0 = makeLevel0Grids(geom_[0].domain(), info_);
    const DistributionMapping dm0(ba0, nranks_, info_.strategy);
    setLevel(0, ba0, dm0);
    finestLevel_ = 0;
    makeNewLevelFromScratch(0, time, ba0, dm0);

    for (int lev = 1; lev <= info_.maxLevel; ++lev) {
        const BoxArray ba = makeNewGrids(lev, time);
        if (ba.empty()) break;
        const DistributionMapping dm(ba, nranks_, info_.strategy);
        setLevel(lev, ba, dm);
        finestLevel_ = lev;
        // During initialization every level is built directly from the
        // problem's initial condition (as amrex::AmrCore::InitFromScratch
        // does); makeNewLevelFromCoarse is reserved for regrid-time growth.
        makeNewLevelFromScratch(lev, time, ba, dm);
    }
}

void AmrCore::regrid(int lbase, Real time) {
    for (int lev = lbase + 1; lev <= info_.maxLevel; ++lev) {
        if (lev > finestLevel_ + 1) break;
        const BoxArray ba = makeNewGrids(lev, time);
        if (ba.empty()) {
            for (int l = finestLevel_; l >= lev; --l) {
                clearLevel(l);
                setLevel(l, BoxArray(), DistributionMapping());
            }
            finestLevel_ = lev - 1;
            break;
        }
        const DistributionMapping dm(ba, nranks_, info_.strategy);
        if (lev <= finestLevel_) {
            if (ba == grids_[lev] && dm == dmap_[lev]) continue;
            remakeLevel(lev, time, ba, dm);
        } else {
            makeNewLevelFromCoarse(lev, time, ba, dm);
            finestLevel_ = lev;
        }
        setLevel(lev, ba, dm);
    }
}

} // namespace crocco::amr
