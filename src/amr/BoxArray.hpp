#pragma once

#include "amr/Box.hpp"
#include "amr/BoxList.hpp"

#include <memory>
#include <unordered_map>
#include <vector>

namespace crocco::amr {

/// An ordered collection of (disjoint) boxes describing one AMR level's
/// patches. Mirrors amrex::BoxArray.
///
/// Intersection queries are the hot path of ghost-cell exchange: they are
/// served by a spatial hash binning boxes into buckets the size of the
/// largest box, giving O(1) expected lookups independent of box count. The
/// hash is built lazily and shared between copies.
///
/// Every non-empty BoxArray carries a cheap identity id: copies share it,
/// coarsen/refine derive it deterministically from the parent's, and two
/// independently built arrays never share one. CommCache keys communication
/// patterns on these ids (AMReX keys its CommMetaData cache the same way),
/// so "same id" must imply "same boxes" — the converse may be false, which
/// only costs a cache miss.
class BoxArray {
public:
    BoxArray() = default;
    explicit BoxArray(std::vector<Box> boxes);
    explicit BoxArray(const Box& single);

    /// Identity for comm-pattern caching: 0 for a default-constructed
    /// (empty) array, unique per constructed array otherwise, preserved by
    /// copies and derived deterministically by coarsen()/refine().
    std::uint64_t id() const { return id_; }

    int size() const { return static_cast<int>(boxes_.size()); }
    bool empty() const { return boxes_.empty(); }
    const Box& operator[](int i) const { return boxes_[i]; }
    const std::vector<Box>& boxes() const { return boxes_; }

    std::int64_t numPts() const;
    Box minimalBox() const;

    /// All (boxIndex, overlap) pairs where overlap = boxes_[boxIndex] & b is
    /// non-empty.
    std::vector<std::pair<int, Box>> intersections(const Box& b) const;

    bool intersects(const Box& b) const;

    /// True if every cell of b lies inside some box of this array.
    bool contains(const Box& b) const;
    bool contains(const IntVect& p) const;

    /// The parts of b not covered by any box in this array.
    std::vector<Box> complementIn(const Box& b) const;

    /// Element-wise coarsened / refined copy (same number of boxes).
    BoxArray coarsen(const IntVect& ratio) const;
    BoxArray coarsen(int r) const { return coarsen(IntVect(r)); }
    BoxArray refine(const IntVect& ratio) const;
    BoxArray refine(int r) const { return refine(IntVect(r)); }

    /// True if every box can be coarsened by ratio exactly.
    bool coarsenable(const IntVect& ratio) const;

    bool operator==(const BoxArray& o) const { return boxes_ == o.boxes_; }
    bool operator!=(const BoxArray& o) const { return !(*this == o); }

private:
    struct Hash {
        IntVect bucketSize{1, 1, 1};
        std::unordered_map<IntVect, std::vector<int>> buckets;
    };
    const Hash& hash() const;
    static std::uint64_t nextId();
    static std::uint64_t deriveId(std::uint64_t parent, std::uint32_t op,
                                  const IntVect& ratio);

    std::vector<Box> boxes_;
    std::uint64_t id_ = 0;
    mutable std::shared_ptr<const Hash> hash_; // built lazily, shared by copies
};

} // namespace crocco::amr
