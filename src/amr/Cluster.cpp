#include "amr/Cluster.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace crocco::amr {

namespace {

Box boundingBox(const std::vector<IntVect>& tags) {
    assert(!tags.empty());
    IntVect lo = tags.front(), hi = tags.front();
    for (const IntVect& t : tags) {
        lo = IntVect::componentMin(lo, t);
        hi = IntVect::componentMax(hi, t);
    }
    return {lo, hi};
}

/// Tag counts per plane along dimension d within bbox.
std::vector<int> signature(const std::vector<IntVect>& tags, const Box& bbox, int d) {
    std::vector<int> sig(bbox.length(d), 0);
    for (const IntVect& t : tags) ++sig[t[d] - bbox.smallEnd(d)];
    return sig;
}

void clusterRecurse(std::vector<IntVect> tags, const ClusterParams& params,
                    std::vector<Box>& out) {
    if (tags.empty()) return;
    const Box bbox = boundingBox(tags);
    const double eff = static_cast<double>(tags.size()) /
                       static_cast<double>(bbox.numPts());
    if (eff >= params.minEfficiency || bbox.size().max() <= params.minWidth) {
        out.push_back(bbox);
        return;
    }

    // Choose a cut plane. Priority: a hole in some signature; then the
    // strongest zero-crossing of the signature Laplacian; then the midpoint
    // of the longest dimension.
    int cutDim = -1, cutIdx = 0;
    for (int d = 0; d < SpaceDim && cutDim < 0; ++d) {
        if (bbox.length(d) < 2 * params.minWidth) continue;
        const auto sig = signature(tags, bbox, d);
        for (int i = params.minWidth; i <= bbox.length(d) - params.minWidth; ++i) {
            if (i < static_cast<int>(sig.size()) && sig[i] == 0) {
                cutDim = d;
                cutIdx = bbox.smallEnd(d) + i;
                break;
            }
        }
    }
    if (cutDim < 0) {
        int bestScore = -1;
        for (int d = 0; d < SpaceDim; ++d) {
            if (bbox.length(d) < 2 * params.minWidth) continue;
            const auto sig = signature(tags, bbox, d);
            std::vector<int> lap(sig.size(), 0);
            for (std::size_t i = 1; i + 1 < sig.size(); ++i)
                lap[i] = sig[i + 1] - 2 * sig[i] + sig[i - 1];
            for (int i = params.minWidth; i <= bbox.length(d) - params.minWidth - 1;
                 ++i) {
                if (lap[i] * lap[i + 1] < 0) {
                    const int score = std::abs(lap[i] - lap[i + 1]);
                    if (score > bestScore) {
                        bestScore = score;
                        cutDim = d;
                        cutIdx = bbox.smallEnd(d) + i + 1;
                    }
                }
            }
        }
    }
    if (cutDim < 0) {
        for (int d = 0; d < SpaceDim; ++d)
            if (cutDim < 0 || bbox.length(d) > bbox.length(cutDim))
                if (bbox.length(d) >= 2 * params.minWidth) cutDim = d;
        if (cutDim < 0) { // nothing splittable
            out.push_back(bbox);
            return;
        }
        cutIdx = bbox.smallEnd(cutDim) + bbox.length(cutDim) / 2;
    }

    std::vector<IntVect> left, right;
    for (const IntVect& t : tags)
        (t[cutDim] < cutIdx ? left : right).push_back(t);
    if (left.empty() || right.empty()) { // degenerate cut; accept as-is
        out.push_back(bbox);
        return;
    }
    clusterRecurse(std::move(left), params, out);
    clusterRecurse(std::move(right), params, out);
}

} // namespace

std::vector<Box> bergerRigoutsos(const std::vector<IntVect>& tags,
                                 const ClusterParams& params) {
    std::vector<Box> out;
    clusterRecurse(tags, params, out);
    return out;
}

std::vector<IntVect> bufferTags(const std::vector<IntVect>& tags, int buf,
                                const Box& domain) {
    std::unordered_set<IntVect> set;
    for (const IntVect& t : tags) {
        for (int dk = -buf; dk <= buf; ++dk)
            for (int dj = -buf; dj <= buf; ++dj)
                for (int di = -buf; di <= buf; ++di) {
                    const IntVect p{t[0] + di, t[1] + dj, t[2] + dk};
                    if (domain.contains(p)) set.insert(p);
                }
    }
    return {set.begin(), set.end()};
}

} // namespace crocco::amr
