#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>

namespace crocco::amr {

/// Number of spatial dimensions. CRoCCo solves the DMR problem in 3-D.
inline constexpr int SpaceDim = 3;

/// A point on the integer lattice: a cell index (i, j, k).
///
/// This is the basic index type for the block-structured AMR machinery.
/// All arithmetic is component-wise.
class IntVect {
public:
    constexpr IntVect() : v_{0, 0, 0} {}
    constexpr IntVect(int i, int j, int k) : v_{i, j, k} {}
    constexpr explicit IntVect(int s) : v_{s, s, s} {}

    constexpr int operator[](int d) const { return v_[d]; }
    constexpr int& operator[](int d) { return v_[d]; }

    constexpr IntVect operator+(const IntVect& o) const {
        return {v_[0] + o.v_[0], v_[1] + o.v_[1], v_[2] + o.v_[2]};
    }
    constexpr IntVect operator-(const IntVect& o) const {
        return {v_[0] - o.v_[0], v_[1] - o.v_[1], v_[2] - o.v_[2]};
    }
    constexpr IntVect operator*(const IntVect& o) const {
        return {v_[0] * o.v_[0], v_[1] * o.v_[1], v_[2] * o.v_[2]};
    }
    constexpr IntVect operator*(int s) const { return {v_[0] * s, v_[1] * s, v_[2] * s}; }
    constexpr IntVect operator-() const { return {-v_[0], -v_[1], -v_[2]}; }

    /// Component-wise division rounding toward negative infinity
    /// (coarsening an index must map cells 0..r-1 to coarse cell 0,
    /// cells -r..-1 to coarse cell -1).
    constexpr IntVect coarsen(const IntVect& ratio) const {
        IntVect r;
        for (int d = 0; d < SpaceDim; ++d) {
            const int q = v_[d], p = ratio[d];
            r[d] = (q >= 0) ? q / p : -((-q + p - 1) / p);
        }
        return r;
    }
    constexpr IntVect coarsen(int ratio) const { return coarsen(IntVect(ratio)); }

    constexpr bool operator==(const IntVect& o) const {
        return v_[0] == o.v_[0] && v_[1] == o.v_[1] && v_[2] == o.v_[2];
    }
    constexpr bool operator!=(const IntVect& o) const { return !(*this == o); }

    /// true if every component of *this is <= the matching component of o
    constexpr bool allLE(const IntVect& o) const {
        return v_[0] <= o.v_[0] && v_[1] <= o.v_[1] && v_[2] <= o.v_[2];
    }
    constexpr bool allGE(const IntVect& o) const { return o.allLE(*this); }
    constexpr bool allLT(const IntVect& o) const {
        return v_[0] < o.v_[0] && v_[1] < o.v_[1] && v_[2] < o.v_[2];
    }

    constexpr int min() const { return std::min({v_[0], v_[1], v_[2]}); }
    constexpr int max() const { return std::max({v_[0], v_[1], v_[2]}); }
    constexpr std::int64_t product() const {
        return static_cast<std::int64_t>(v_[0]) * v_[1] * v_[2];
    }

    static constexpr IntVect zero() { return IntVect(0); }
    static constexpr IntVect unit() { return IntVect(1); }

    /// Basis vector along dimension d.
    static constexpr IntVect basis(int d) {
        IntVect r;
        r[d] = 1;
        return r;
    }

    static constexpr IntVect componentMin(const IntVect& a, const IntVect& b) {
        return {std::min(a[0], b[0]), std::min(a[1], b[1]), std::min(a[2], b[2])};
    }
    static constexpr IntVect componentMax(const IntVect& a, const IntVect& b) {
        return {std::max(a[0], b[0]), std::max(a[1], b[1]), std::max(a[2], b[2])};
    }

private:
    std::array<int, 3> v_;
};

std::ostream& operator<<(std::ostream& os, const IntVect& iv);

} // namespace crocco::amr

template <>
struct std::hash<crocco::amr::IntVect> {
    std::size_t operator()(const crocco::amr::IntVect& iv) const noexcept {
        // Standard 64-bit mix of the three 21-bit-ish index components.
        std::uint64_t h = 1469598103934665603ull;
        for (int d = 0; d < 3; ++d) {
            h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(iv[d]));
            h *= 1099511628211ull;
        }
        return static_cast<std::size_t>(h);
    }
};
