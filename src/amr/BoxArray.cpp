#include "amr/BoxArray.hpp"
#include <algorithm>

#include <cassert>

namespace crocco::amr {

BoxArray::BoxArray(std::vector<Box> boxes) : boxes_(std::move(boxes)) {
    for ([[maybe_unused]] const Box& b : boxes_) assert(b.ok());
}

BoxArray::BoxArray(const Box& single) : boxes_{single} { assert(single.ok()); }

std::int64_t BoxArray::numPts() const { return totalPts(boxes_); }

Box BoxArray::minimalBox() const {
    Box mb;
    for (const Box& b : boxes_) mb = Box::bboxUnion(mb, b);
    return mb;
}

const BoxArray::Hash& BoxArray::hash() const {
    if (!hash_) {
        auto h = std::make_shared<Hash>();
        IntVect maxSize(1);
        for (const Box& b : boxes_)
            maxSize = IntVect::componentMax(maxSize, b.size());
        h->bucketSize = maxSize;
        for (int i = 0; i < size(); ++i) {
            // A box spans at most 2 buckets per dimension when buckets are
            // at least as large as the box.
            const Box cb = boxes_[i].coarsen(maxSize);
            forEachCell(cb, [&](int bi, int bj, int bk) {
                h->buckets[IntVect{bi, bj, bk}].push_back(i);
            });
        }
        hash_ = std::move(h);
    }
    return *hash_;
}

std::vector<std::pair<int, Box>> BoxArray::intersections(const Box& b) const {
    std::vector<std::pair<int, Box>> out;
    if (boxes_.empty() || !b.ok()) return out;
    const Hash& h = hash();
    const Box cb = b.coarsen(h.bucketSize);
    // Candidate gather + sort/unique keeps the query O(candidates), not
    // O(total boxes) — this is the hot path of ghost-exchange pattern
    // extraction on 10^5-box layouts.
    std::vector<int> candidates;
    forEachCell(cb, [&](int bi, int bj, int bk) {
        auto it = h.buckets.find(IntVect{bi, bj, bk});
        if (it == h.buckets.end()) return;
        candidates.insert(candidates.end(), it->second.begin(), it->second.end());
    });
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (int idx : candidates) {
        const Box isect = boxes_[idx] & b;
        if (isect.ok()) out.emplace_back(idx, isect);
    }
    return out;
}

bool BoxArray::intersects(const Box& b) const { return !intersections(b).empty(); }

bool BoxArray::contains(const Box& b) const {
    if (!b.ok()) return true;
    std::vector<Box> covers;
    for (const auto& [idx, isect] : intersections(b)) covers.push_back(isect);
    return fullyCovered(b, covers);
}

bool BoxArray::contains(const IntVect& p) const {
    return contains(Box(p, p));
}

std::vector<Box> BoxArray::complementIn(const Box& b) const {
    std::vector<Box> covers;
    for (const auto& [idx, isect] : intersections(b)) covers.push_back(isect);
    return boxDiff(b, covers);
}

BoxArray BoxArray::coarsen(const IntVect& ratio) const {
    std::vector<Box> out;
    out.reserve(boxes_.size());
    for (const Box& b : boxes_) out.push_back(b.coarsen(ratio));
    return BoxArray(std::move(out));
}

BoxArray BoxArray::refine(const IntVect& ratio) const {
    std::vector<Box> out;
    out.reserve(boxes_.size());
    for (const Box& b : boxes_) out.push_back(b.refine(ratio));
    return BoxArray(std::move(out));
}

bool BoxArray::coarsenable(const IntVect& ratio) const {
    for (const Box& b : boxes_)
        if (!b.coarsenable(ratio)) return false;
    return true;
}

} // namespace crocco::amr
