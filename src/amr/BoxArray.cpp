#include "amr/BoxArray.hpp"
#include <algorithm>
#include <atomic>

#include <cassert>

namespace crocco::amr {

std::uint64_t BoxArray::nextId() {
    static std::atomic<std::uint64_t> counter{0};
    return ++counter;
}

std::uint64_t BoxArray::deriveId(std::uint64_t parent, std::uint32_t op,
                                 const IntVect& ratio) {
    if (parent == 0) return 0;
    // splitmix64 over (parent, op, ratio): the same parent coarsened by the
    // same ratio always yields the same derived id, so the scratch BoxArrays
    // FillPatch rebuilds every call key to the same comm-cache entries.
    std::uint64_t x = parent;
    auto mix = [&x](std::uint64_t v) {
        x += 0x9e3779b97f4a7c15ull + v;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        x = z ^ (z >> 31);
    };
    mix(op);
    for (int d = 0; d < SpaceDim; ++d)
        mix(static_cast<std::uint64_t>(ratio[d]));
    return x != 0 ? x : 1;
}

BoxArray::BoxArray(std::vector<Box> boxes)
    : boxes_(std::move(boxes)), id_(nextId()) {
    for ([[maybe_unused]] const Box& b : boxes_) assert(b.ok());
}

BoxArray::BoxArray(const Box& single) : boxes_{single}, id_(nextId()) {
    assert(single.ok());
}

std::int64_t BoxArray::numPts() const { return totalPts(boxes_); }

Box BoxArray::minimalBox() const {
    Box mb;
    for (const Box& b : boxes_) mb = Box::bboxUnion(mb, b);
    return mb;
}

const BoxArray::Hash& BoxArray::hash() const {
    if (!hash_) {
        auto h = std::make_shared<Hash>();
        IntVect maxSize(1);
        for (const Box& b : boxes_)
            maxSize = IntVect::componentMax(maxSize, b.size());
        h->bucketSize = maxSize;
        for (int i = 0; i < size(); ++i) {
            // A box spans at most 2 buckets per dimension when buckets are
            // at least as large as the box.
            const Box cb = boxes_[i].coarsen(maxSize);
            forEachCell(cb, [&](int bi, int bj, int bk) {
                h->buckets[IntVect{bi, bj, bk}].push_back(i);
            });
        }
        hash_ = std::move(h);
    }
    return *hash_;
}

std::vector<std::pair<int, Box>> BoxArray::intersections(const Box& b) const {
    std::vector<std::pair<int, Box>> out;
    if (boxes_.empty() || !b.ok()) return out;
    const Hash& h = hash();
    const Box cb = b.coarsen(h.bucketSize);
    // Candidate gather + sort/unique keeps the query O(candidates), not
    // O(total boxes) — this is the hot path of ghost-exchange pattern
    // extraction on 10^5-box layouts.
    std::vector<int> candidates;
    forEachCell(cb, [&](int bi, int bj, int bk) {
        auto it = h.buckets.find(IntVect{bi, bj, bk});
        if (it == h.buckets.end()) return;
        candidates.insert(candidates.end(), it->second.begin(), it->second.end());
    });
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (int idx : candidates) {
        const Box isect = boxes_[idx] & b;
        if (isect.ok()) out.emplace_back(idx, isect);
    }
    return out;
}

bool BoxArray::intersects(const Box& b) const { return !intersections(b).empty(); }

bool BoxArray::contains(const Box& b) const {
    if (!b.ok()) return true;
    std::vector<Box> covers;
    for (const auto& [idx, isect] : intersections(b)) covers.push_back(isect);
    return fullyCovered(b, covers);
}

bool BoxArray::contains(const IntVect& p) const {
    return contains(Box(p, p));
}

std::vector<Box> BoxArray::complementIn(const Box& b) const {
    std::vector<Box> covers;
    for (const auto& [idx, isect] : intersections(b)) covers.push_back(isect);
    return boxDiff(b, covers);
}

BoxArray BoxArray::coarsen(const IntVect& ratio) const {
    std::vector<Box> out;
    out.reserve(boxes_.size());
    for (const Box& b : boxes_) out.push_back(b.coarsen(ratio));
    BoxArray ba(std::move(out));
    ba.id_ = deriveId(id_, 1, ratio);
    return ba;
}

BoxArray BoxArray::refine(const IntVect& ratio) const {
    std::vector<Box> out;
    out.reserve(boxes_.size());
    for (const Box& b : boxes_) out.push_back(b.refine(ratio));
    BoxArray ba(std::move(out));
    ba.id_ = deriveId(id_, 2, ratio);
    return ba;
}

bool BoxArray::coarsenable(const IntVect& ratio) const {
    for (const Box& b : boxes_)
        if (!b.coarsenable(ratio)) return false;
    return true;
}

} // namespace crocco::amr
