#include "amr/Geometry.hpp"

#include <cassert>
#include <vector>

namespace crocco::amr {

Geometry::Geometry(const Box& domain, const std::array<Real, 3>& probLo,
                   const std::array<Real, 3>& probHi, Periodicity per)
    : domain_(domain), probLo_(probLo), probHi_(probHi), per_(per) {
    assert(domain.ok());
    for (int d = 0; d < SpaceDim; ++d) {
        assert(probHi[d] > probLo[d]);
        dx_[d] = (probHi[d] - probLo[d]) / domain.length(d);
    }
}

Geometry Geometry::refine(const IntVect& ratio) const {
    return Geometry(domain_.refine(ratio), probLo_, probHi_, per_);
}

Geometry Geometry::coarsen(const IntVect& ratio) const {
    assert(domain_.coarsenable(ratio));
    return Geometry(domain_.coarsen(ratio), probLo_, probHi_, per_);
}

std::vector<IntVect> Geometry::periodicShifts() const {
    std::vector<IntVect> shifts;
    const IntVect len = domain_.size();
    for (int sk = -1; sk <= 1; ++sk) {
        if (sk != 0 && !per_.isPeriodic(2)) continue;
        for (int sj = -1; sj <= 1; ++sj) {
            if (sj != 0 && !per_.isPeriodic(1)) continue;
            for (int si = -1; si <= 1; ++si) {
                if (si != 0 && !per_.isPeriodic(0)) continue;
                shifts.push_back(IntVect{si * len[0], sj * len[1], sk * len[2]});
            }
        }
    }
    return shifts;
}

} // namespace crocco::amr
