#include "amr/Box.hpp"

#include <cassert>
#include <ostream>

namespace crocco::amr {

std::ostream& operator<<(std::ostream& os, const IntVect& iv) {
    return os << '(' << iv[0] << ',' << iv[1] << ',' << iv[2] << ')';
}

std::ostream& operator<<(std::ostream& os, const Box& b) {
    return os << '[' << b.smallEnd() << ' ' << b.bigEnd() << ']';
}

std::pair<Box, Box> Box::chop() const {
    int d = 0;
    for (int i = 1; i < SpaceDim; ++i)
        if (length(i) > length(d)) d = i;
    assert(length(d) >= 2);
    return chop(d, lo_[d] + length(d) / 2);
}

std::pair<Box, Box> Box::chop(int d, int cut) const {
    assert(cut > lo_[d] && cut <= hi_[d]);
    IntVect lhi = hi_, rlo = lo_;
    lhi[d] = cut - 1;
    rlo[d] = cut;
    return {Box(lo_, lhi), Box(rlo, hi_)};
}

} // namespace crocco::amr
