#pragma once

#include "amr/Box.hpp"

#include <vector>

namespace crocco::amr {

/// Parameters of the Berger-Rigoutsos grid generation algorithm.
struct ClusterParams {
    /// Minimum fraction of tagged cells a produced box must contain before
    /// the algorithm stops splitting it (AMReX grid_eff).
    double minEfficiency = 0.70;
    /// Boxes at or below this many cells per side are never split further.
    int minWidth = 2;
};

/// Berger-Rigoutsos point clustering: cover the tagged cells with a small
/// set of boxes, each reasonably "full" of tags.
///
/// The classic signature algorithm: take the bounding box of the tags; if it
/// is efficient enough, accept it; otherwise split at a hole in the tag
/// signature (per-plane tag counts), else at the strongest inflection of the
/// signature's second difference, else at the midpoint — and recurse.
std::vector<Box> bergerRigoutsos(const std::vector<IntVect>& tags,
                                 const ClusterParams& params = {});

/// Grow each tag by `buf` cells in every direction (AMReX n_error_buf),
/// clipped to `domain` — ensures features cannot escape the refined region
/// between regrids.
std::vector<IntVect> bufferTags(const std::vector<IntVect>& tags, int buf,
                                const Box& domain);

} // namespace crocco::amr
