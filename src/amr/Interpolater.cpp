#include "amr/Interpolater.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace crocco::amr {

namespace {

/// Coarse fractional coordinate of a fine cell center: the position of fine
/// cell `ifine` in units of coarse cells, measured from coarse cell-center
/// `0`. E.g. at ratio 2, fine cell 0 sits at coarse coordinate -0.25.
inline double coarseFrac(int ifine, int ratio) {
    return (ifine + 0.5) / ratio - 0.5;
}

inline double minmod(double a, double b) {
    if (a * b <= 0.0) return 0.0;
    return std::abs(a) < std::abs(b) ? a : b;
}

} // namespace

void PCInterp::doInterp(const FArrayBox& crse, FArrayBox& fine, const Box& fineRegion,
                      int srcComp, int destComp, int numComp, const IntVect& ratio,
                      const InterpContext&) const {
    auto c = crse.const_array();
    auto f = fine.array();
    for (int n = 0; n < numComp; ++n) {
        forEachCell(fineRegion, [&](int i, int j, int k) {
            const IntVect cc = IntVect{i, j, k}.coarsen(ratio);
            f(i, j, k, destComp + n) = c(cc[0], cc[1], cc[2], srcComp + n);
        });
    }
}

void TrilinearInterp::doInterp(const FArrayBox& crse, FArrayBox& fine,
                             const Box& fineRegion, int srcComp, int destComp,
                             int numComp, const IntVect& ratio,
                             const InterpContext&) const {
    auto c = crse.const_array();
    auto f = fine.array();
    forEachCell(fineRegion, [&](int i, int j, int k) {
        const IntVect fi{i, j, k};
        int base[3];
        double w[3];
        for (int d = 0; d < SpaceDim; ++d) {
            const double xc = coarseFrac(fi[d], ratio[d]);
            base[d] = static_cast<int>(std::floor(xc));
            w[d] = xc - base[d];
        }
        for (int n = 0; n < numComp; ++n) {
            double v = 0.0;
            for (int dk = 0; dk <= 1; ++dk)
                for (int dj = 0; dj <= 1; ++dj)
                    for (int di = 0; di <= 1; ++di) {
                        const double wt = (di ? w[0] : 1 - w[0]) *
                                          (dj ? w[1] : 1 - w[1]) *
                                          (dk ? w[2] : 1 - w[2]);
                        v += wt * c(base[0] + di, base[1] + dj, base[2] + dk,
                                    srcComp + n);
                    }
            f(i, j, k, destComp + n) = v;
        }
    });
}

void CellConservativeLinear::doInterp(const FArrayBox& crse, FArrayBox& fine,
                                    const Box& fineRegion, int srcComp,
                                    int destComp, int numComp, const IntVect& ratio,
                                    const InterpContext&) const {
    auto c = crse.const_array();
    auto f = fine.array();
    forEachCell(fineRegion, [&](int i, int j, int k) {
        const IntVect fi{i, j, k};
        const IntVect cc = fi.coarsen(ratio);
        for (int n = 0; n < numComp; ++n) {
            double v = c(cc[0], cc[1], cc[2], srcComp + n);
            for (int d = 0; d < SpaceDim; ++d) {
                IntVect up = cc, dn = cc;
                up[d] += 1;
                dn[d] -= 1;
                const double u0 = c(cc[0], cc[1], cc[2], srcComp + n);
                const double slope =
                    minmod(c(up[0], up[1], up[2], srcComp + n) - u0,
                           u0 - c(dn[0], dn[1], dn[2], srcComp + n));
                // Offset of this fine cell center from its coarse parent's
                // center, in coarse cell widths. Children's offsets average
                // to zero, so the coarse mean is preserved exactly.
                const double off =
                    (fi[d] - cc[d] * ratio[d] + 0.5) / ratio[d] - 0.5;
                v += slope * off;
            }
            f(i, j, k, destComp + n) = v;
        }
    });
}

void CurvilinearInterp::doInterp(const FArrayBox& crse, FArrayBox& fine,
                               const Box& fineRegion, int srcComp, int destComp,
                               int numComp, const IntVect& ratio,
                               const InterpContext& ctx) const {
    assert(ctx.crseCoords && ctx.fineCoords);
    auto c = crse.const_array();
    auto f = fine.array();
    auto cx = ctx.crseCoords->const_array();
    auto fx = ctx.fineCoords->const_array();
    forEachCell(fineRegion, [&](int i, int j, int k) {
        const IntVect fi{i, j, k};
        int base[3];
        for (int d = 0; d < SpaceDim; ++d)
            base[d] = static_cast<int>(std::floor(coarseFrac(fi[d], ratio[d])));

        // Per-dimension weight from *physical* positions: project the fine
        // point onto the coarse grid line through the base cell. On a
        // uniform grid this reduces exactly to the trilinear weights.
        double w[3];
        for (int d = 0; d < SpaceDim; ++d) {
            IntVect a{base[0], base[1], base[2]};
            IntVect b = a;
            b[d] += 1;
            double dot = 0.0, len2 = 0.0;
            for (int m = 0; m < 3; ++m) {
                const double e = cx(b[0], b[1], b[2], m) - cx(a[0], a[1], a[2], m);
                const double r = fx(i, j, k, m) - cx(a[0], a[1], a[2], m);
                dot += r * e;
                len2 += e * e;
            }
            w[d] = std::clamp(dot / len2, 0.0, 1.0);
        }
        for (int n = 0; n < numComp; ++n) {
            double v = 0.0;
            for (int dk = 0; dk <= 1; ++dk)
                for (int dj = 0; dj <= 1; ++dj)
                    for (int di = 0; di <= 1; ++di) {
                        const double wt = (di ? w[0] : 1 - w[0]) *
                                          (dj ? w[1] : 1 - w[1]) *
                                          (dk ? w[2] : 1 - w[2]);
                        v += wt * c(base[0] + di, base[1] + dj, base[2] + dk,
                                    srcComp + n);
                    }
            f(i, j, k, destComp + n) = v;
        }
    });
}

namespace {

/// One-dimensional WENO interpolation at fractional position x (in units of
/// the sample spacing, measured from sample u1 of the four samples
/// u0..u3 at positions -1, 0, 1, 2; x must lie in [0, 1]).
///
/// Two quadratic stencils {u0,u1,u2} and {u1,u2,u3} are blended with the
/// Neville linear weights (which reproduce the full cubic on smooth data)
/// modulated by Jiang-Shu-style smoothness indicators so the blend falls
/// back to the smoother stencil at a discontinuity.
double weno4(double u0, double u1, double u2, double u3, double x) {
    // Quadratic Lagrange interpolants evaluated at x.
    const double q0 = u1 + 0.5 * x * (u2 - u0) + 0.5 * x * x * (u2 - 2 * u1 + u0);
    const double xm = x - 1.0; // position relative to u2 for the right stencil
    const double q1 = u2 + 0.5 * xm * (u3 - u1) + 0.5 * xm * xm * (u3 - 2 * u2 + u1);
    // Neville weights combining the quadratics into the cubic.
    const double g1 = (x + 1.0) / 3.0;
    const double g0 = 1.0 - g1;
    // Smoothness of each stencil.
    const double b0 = (u2 - 2 * u1 + u0) * (u2 - 2 * u1 + u0) +
                      0.25 * (u2 - u0) * (u2 - u0);
    const double b1 = (u3 - 2 * u2 + u1) * (u3 - 2 * u2 + u1) +
                      0.25 * (u3 - u1) * (u3 - u1);
    const double eps = 1e-6;
    const double a0 = g0 / ((eps + b0) * (eps + b0));
    const double a1 = g1 / ((eps + b1) * (eps + b1));
    return (a0 * q0 + a1 * q1) / (a0 + a1);
}

} // namespace

void WenoInterp::doInterp(const FArrayBox& crse, FArrayBox& fine,
                        const Box& fineRegion, int srcComp, int destComp,
                        int numComp, const IntVect& ratio,
                        const InterpContext&) const {
    auto c = crse.const_array();
    auto f = fine.array();
    forEachCell(fineRegion, [&](int i, int j, int k) {
        const IntVect fi{i, j, k};
        int base[3];
        double x[3];
        for (int d = 0; d < SpaceDim; ++d) {
            const double xc = coarseFrac(fi[d], ratio[d]);
            base[d] = static_cast<int>(std::floor(xc));
            x[d] = xc - base[d];
        }
        for (int n = 0; n < numComp; ++n) {
            // Dimension-by-dimension sweep over the 4x4x4 coarse block:
            // i-lines first, then j, then k.
            double lineJ[4][4];
            for (int dk = -1; dk <= 2; ++dk) {
                for (int dj = -1; dj <= 2; ++dj) {
                    lineJ[dk + 1][dj + 1] =
                        weno4(c(base[0] - 1, base[1] + dj, base[2] + dk, srcComp + n),
                              c(base[0], base[1] + dj, base[2] + dk, srcComp + n),
                              c(base[0] + 1, base[1] + dj, base[2] + dk, srcComp + n),
                              c(base[0] + 2, base[1] + dj, base[2] + dk, srcComp + n),
                              x[0]);
                }
            }
            double lineK[4];
            for (int dk = 0; dk < 4; ++dk)
                lineK[dk] = weno4(lineJ[dk][0], lineJ[dk][1], lineJ[dk][2],
                                  lineJ[dk][3], x[1]);
            f(i, j, k, destComp + n) =
                weno4(lineK[0], lineK[1], lineK[2], lineK[3], x[2]);
        }
    });
}

} // namespace crocco::amr
