#include "amr/BoxList.hpp"

#include <cassert>

namespace crocco::amr {

std::vector<Box> boxDiff(const Box& a, const Box& b) {
    std::vector<Box> out;
    if (!a.ok()) return out;
    const Box isect = a & b;
    if (!isect.ok()) {
        out.push_back(a);
        return out;
    }
    // Peel off up to two slabs per dimension; what remains shrinks to the
    // intersection, which is dropped.
    Box rest = a;
    for (int d = 0; d < SpaceDim; ++d) {
        if (rest.smallEnd(d) < isect.smallEnd(d)) {
            auto [left, right] = rest.chop(d, isect.smallEnd(d));
            out.push_back(left);
            rest = right;
        }
        if (rest.bigEnd(d) > isect.bigEnd(d)) {
            auto [left, right] = rest.chop(d, isect.bigEnd(d) + 1);
            out.push_back(right);
            rest = left;
        }
    }
    assert(rest == isect);
    return out;
}

std::vector<Box> boxDiff(const Box& a, const std::vector<Box>& covers) {
    std::vector<Box> remaining{a};
    for (const Box& c : covers) {
        std::vector<Box> next;
        for (const Box& r : remaining) {
            auto parts = boxDiff(r, c);
            next.insert(next.end(), parts.begin(), parts.end());
        }
        remaining = std::move(next);
        if (remaining.empty()) break;
    }
    return remaining;
}

std::int64_t totalPts(const std::vector<Box>& boxes) {
    std::int64_t n = 0;
    for (const Box& b : boxes) n += b.numPts();
    return n;
}

bool fullyCovered(const Box& a, const std::vector<Box>& covers) {
    return boxDiff(a, covers).empty();
}

std::vector<Box> chopToMaxSize(std::vector<Box> boxes, const IntVect& maxSize) {
    std::vector<Box> out;
    while (!boxes.empty()) {
        Box b = boxes.back();
        boxes.pop_back();
        int d = -1;
        for (int i = 0; i < SpaceDim; ++i)
            if (b.length(i) > maxSize[i] && (d < 0 || b.length(i) > b.length(d))) d = i;
        if (d < 0) {
            out.push_back(b);
        } else {
            // Cut into pieces of at most maxSize[d], keeping pieces as even
            // as possible so the load balancer sees similar box sizes.
            const int n = b.length(d);
            const int npieces = (n + maxSize[d] - 1) / maxSize[d];
            const int target = (n + npieces - 1) / npieces;
            auto [left, right] = b.chop(d, b.smallEnd(d) + target);
            boxes.push_back(left);
            boxes.push_back(right);
        }
    }
    return out;
}

std::vector<Box> refineToBlockingFactor(std::vector<Box> boxes, int factor) {
    for (Box& b : boxes) {
        const IntVect f(factor);
        b = b.coarsen(f).refine(f);
    }
    return boxes;
}

} // namespace crocco::amr
