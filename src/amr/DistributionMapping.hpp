#pragma once

#include "amr/BoxArray.hpp"

#include <vector>

namespace crocco::amr {

/// Assignment of each box in a BoxArray to an owning MPI rank.
///
/// The default strategy reproduces AMReX's: order boxes along a Z-Morton
/// space-filling curve through their centers, then split the curve into
/// contiguous chunks with approximately equal total cell counts (SFC
/// strategy). A knapsack strategy is provided as an ablation comparator.
class DistributionMapping {
public:
    enum class Strategy { SFC, Knapsack, RoundRobin };

    DistributionMapping() = default;

    /// Build a mapping of `ba` over `nranks` ranks with the given strategy.
    DistributionMapping(const BoxArray& ba, int nranks,
                        Strategy strategy = Strategy::SFC);

    /// Explicit mapping (mainly for tests).
    DistributionMapping(std::vector<int> owners, int nranks);

    int operator[](int boxIndex) const { return owner_[boxIndex]; }
    int size() const { return static_cast<int>(owner_.size()); }
    int numRanks() const { return nranks_; }
    const std::vector<int>& owners() const { return owner_; }

    /// Total cells owned by each rank, for load-balance diagnostics.
    std::vector<std::int64_t> pointsPerRank(const BoxArray& ba) const;

    /// max(points per rank) / mean(points per rank); 1.0 is perfect.
    double imbalance(const BoxArray& ba) const;

    bool operator==(const DistributionMapping& o) const {
        return owner_ == o.owner_ && nranks_ == o.nranks_;
    }

private:
    std::vector<int> owner_;
    int nranks_ = 1;
};

} // namespace crocco::amr
