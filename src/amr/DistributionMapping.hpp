#pragma once

#include "amr/BoxArray.hpp"

#include <vector>

namespace crocco::amr {

/// Assignment of each box in a BoxArray to an owning MPI rank.
///
/// The default strategy reproduces AMReX's: order boxes along a Z-Morton
/// space-filling curve through their centers, then split the curve into
/// contiguous chunks with approximately equal total cell counts (SFC
/// strategy). A knapsack strategy is provided as an ablation comparator.
class DistributionMapping {
public:
    enum class Strategy { SFC, Knapsack, RoundRobin };

    DistributionMapping() = default;

    /// Build a mapping of `ba` over `nranks` ranks with the given strategy.
    DistributionMapping(const BoxArray& ba, int nranks,
                        Strategy strategy = Strategy::SFC);

    /// Explicit mapping (mainly for tests).
    DistributionMapping(std::vector<int> owners, int nranks);

    int operator[](int boxIndex) const { return owner_[boxIndex]; }
    int size() const { return static_cast<int>(owner_.size()); }
    int numRanks() const { return nranks_; }
    const std::vector<int>& owners() const { return owner_; }

    /// Total cells owned by each rank, for load-balance diagnostics.
    std::vector<std::int64_t> pointsPerRank(const BoxArray& ba) const;

    /// max(points per rank) / mean(points per rank); 1.0 is perfect.
    double imbalance(const BoxArray& ba) const;

    /// Rebuild this mapping over a communicator that lost `deadRank`
    /// (post-shrink rank recovery): surviving owners keep their boxes and
    /// are renumbered densely (r > deadRank → r - 1, matching
    /// SimComm::shrink), and each of the dead rank's boxes moves to the
    /// survivor with the least total cells at that point (deterministic:
    /// ties break to the lowest new rank, boxes processed in index order).
    /// Keeping survivors' boxes in place minimizes redistribution traffic —
    /// only the dead rank's data moves. Throws std::invalid_argument on a
    /// bad rank and std::logic_error when no survivor would remain.
    DistributionMapping excludeRank(int deadRank, const BoxArray& ba) const;

    bool operator==(const DistributionMapping& o) const {
        return owner_ == o.owner_ && nranks_ == o.nranks_;
    }

private:
    std::vector<int> owner_;
    int nranks_ = 1;
};

} // namespace crocco::amr
