#pragma once

#include "amr/IntVect.hpp"

#include <cstdint>

namespace crocco::amr {

/// Z-Morton space-filling curve index for 3-D lattice points.
///
/// AMReX's default load balancer orders boxes along a Z-Morton curve and then
/// splits the curve into contiguous chunks per rank; we reproduce that here
/// (see DistributionMapping). Each coordinate contributes up to 21 bits, so
/// indices up to 2^21-1 per dimension are supported — far beyond the largest
/// paper configuration (4.19e10 points is ~3475 cells per side).
std::uint64_t mortonIndex(const IntVect& p);

/// Inverse of mortonIndex (for testing round-trips).
IntVect mortonDecode(std::uint64_t code);

} // namespace crocco::amr
