#pragma once

#include "amr/Geometry.hpp"
#include "amr/Interpolater.hpp"
#include "amr/MultiFab.hpp"

#include <functional>

namespace crocco::amr {

/// Callback that applies physical boundary conditions: fills the ghost cells
/// of `mf` that lie outside the (non-periodic faces of the) domain. This is
/// CRoCCo's custom BC_Fill kernel (Algorithm 2); the AMR machinery treats it
/// as opaque.
using PhysBCFunct = std::function<void(MultiFab& mf, const Geometry& geom, Real time)>;

/// Fill `dst` (valid + ghost cells) from same-level data only: copy valid
/// cells from `src`, exchange ghost cells between patches (point-to-point
/// MPI in a distributed run), and apply physical BCs. Used for the coarsest
/// level, mirroring amrex::FillPatchSingleLevel.
///
/// `dst` and `src` must share a BoxArray ("src" is typically the level's
/// state and "dst" a scratch copy with ghost cells).
void FillPatchSingleLevel(MultiFab& dst, const MultiFab& src, const Geometry& geom,
                          const PhysBCFunct& bc, Real time);

/// Fill `dst` on a fine level from fine data where available and from
/// interpolated coarse data elsewhere, mirroring amrex::FillPatchTwoLevels:
///
///  1. valid cells copied from `fineSrc`;
///  2. ghost cells covered by fine patches exchanged point-to-point;
///  3. remaining in-domain ghost cells interpolated from `crseSrc` via
///     `interp` (coarse data is gathered into a scratch MultiFab with a
///     ParallelCopy);
///  4. physical BCs applied by `fineBC`.
///
/// When `interp.needsCoordinates()` (the curvilinear scheme), `fineCoords` /
/// `crseCoords` must be the 3-component physical-coordinate MultiFabs of the
/// two levels. Gathering the coarse coordinates requires the *additional
/// global ParallelCopy* the paper identifies as CRoCCo 2.0's scaling
/// bottleneck; it is logged under the tag "ParallelCopy_interp".
void FillPatchTwoLevels(MultiFab& dst, const MultiFab& fineSrc,
                        const MultiFab& crseSrc, const Geometry& fineGeom,
                        const Geometry& crseGeom, const IntVect& ratio,
                        const Interpolater& interp, const PhysBCFunct& fineBC,
                        const PhysBCFunct& crseBC, Real time,
                        const MultiFab* fineCoords = nullptr,
                        const MultiFab* crseCoords = nullptr);

/// Split (asynchronous) FillPatch, mirroring the Begin/End pair of
/// MultiFab::fillBoundary. Begin copies the valid cells and *posts* the
/// same-level ghost exchange without draining it; End drains the exchange
/// and completes the fill (for two levels: coarse gather, ghost
/// interpolation, physical BCs). Kernels that read only valid cells — the
/// interior pass of the split RK3 advance — run between the two, hiding
/// the exchange behind compute (docs/performance.md §4).
///
/// Begin+End is byte-identical to the blocking call: both share the same
/// completion code, and the Begin/End exchange itself replays the pattern
/// copies and message records in build order.
void FillPatchSingleLevelBegin(MultiFab& dst, const MultiFab& src,
                               const Geometry& geom);
void FillPatchSingleLevelEnd(MultiFab& dst, const Geometry& geom,
                             const PhysBCFunct& bc, Real time);
void FillPatchTwoLevelsBegin(MultiFab& dst, const MultiFab& fineSrc,
                             const Geometry& fineGeom);
void FillPatchTwoLevelsEnd(MultiFab& dst, const MultiFab& crseSrc,
                           const Geometry& fineGeom, const Geometry& crseGeom,
                           const IntVect& ratio, const Interpolater& interp,
                           const PhysBCFunct& fineBC, const PhysBCFunct& crseBC,
                           Real time, const MultiFab* fineCoords = nullptr,
                           const MultiFab* crseCoords = nullptr);

/// Fill `dst` (valid + in-domain ghost cells) *entirely* by interpolation
/// from the coarser level, then apply physical BCs — used when regridding
/// creates or extends a fine level (mirrors amrex::InterpFromCoarseLevel).
/// Coordinate MultiFabs are required iff interp.needsCoordinates().
void InterpFromCoarseLevel(MultiFab& dst, const MultiFab& crseSrc,
                           const Geometry& fineGeom, const Geometry& crseGeom,
                           const IntVect& ratio, const Interpolater& interp,
                           const PhysBCFunct& fineBC, const PhysBCFunct& crseBC,
                           Real time, const MultiFab* fineCoords = nullptr,
                           const MultiFab* crseCoords = nullptr);

/// Replace each coarse cell covered by fine patches with the average of the
/// covering fine cells (Algorithm 2's AverageDown, restriction).
void AverageDown(const MultiFab& fine, MultiFab& crse, const IntVect& ratio,
                 int srcComp, int destComp, int numComp);

/// Regions of `region` NOT covered by `ba` or any of its periodic images.
std::vector<Box> uncoveredBy(const Box& region, const BoxArray& ba,
                             const Geometry& geom);

/// Fill every cell of `fab` outside `interior` by dimension-by-dimension
/// linear extrapolation from the two nearest interior cells. Used to extend
/// stored physical coordinates past physical domain faces, where no data
/// exists to copy (coordinates vary smoothly, so linear extension is exact
/// for affine mappings and 2nd-order accurate otherwise). `interior` must be
/// at least 2 cells thick in each dimension it is extrapolated along.
void linearExtrapolateGhost(FArrayBox& fab, const Box& interior, int srcComp,
                            int numComp);

} // namespace crocco::amr
