// crocco-analyze:allow-file(R1): FArrayBox owns its storage; .data() here
// is the allocation/copy layer the Array4 accessors are built on top of.
#pragma once

#include "amr/Array4.hpp"
#include "amr/Box.hpp"

#ifdef CROCCO_CHECK
#include "check/FabShadow.hpp"
#endif

#include <vector>

namespace crocco::amr {

/// A multi-component array of Reals defined over a Box (including any ghost
/// region — the box here is the *allocated* region). Mirrors
/// amrex::FArrayBox: Fortran-order storage, components outermost.
///
/// Check builds attach a check::FabShadow validity map: a bare fab starts
/// fully Valid (its storage is value-initialized), while MultiFab::define
/// calls markUninitialized() to poison the data and reset the map, so the
/// first read of any never-filled cell is caught. The views returned by
/// array()/const_array() carry the shadow into kernels.
class FArrayBox {
public:
    FArrayBox() = default;
    FArrayBox(const Box& b, int ncomp, Real initial = 0.0);

    const Box& box() const { return box_; }
    int nComp() const { return ncomp_; }
    /// Payload element count (box cells x components). The storage itself
    /// holds one extra trailing element: the gpu::Arena allocation canary.
    std::int64_t size() const {
        return static_cast<std::int64_t>(box_.numPts()) * ncomp_;
    }

    /// True while the trailing allocation canary still holds the Arena
    /// guard pattern — a tripped canary means an out-of-box overrun (or an
    /// SDC hit on the allocator header region). Checked by ScratchPool on
    /// every lease return and by FabGuard verifies.
    bool canaryIntact() const;

#ifdef CROCCO_CHECK
    Array4<Real> array() { return {data_.data(), box_, ncomp_, &shadow_}; }
    Array4<const Real> const_array() const {
        return {data_.data(), box_, ncomp_, &shadow_};
    }
#else
    Array4<Real> array() { return {data_.data(), box_, ncomp_}; }
    Array4<const Real> const_array() const { return {data_.data(), box_, ncomp_}; }
#endif

    Real& operator()(const IntVect& p, int n = 0);
    Real operator()(const IntVect& p, int n = 0) const;

    void setVal(Real v);
    void setVal(Real v, const Box& region, int comp, int ncomp);

    /// this(region, destComp..) = src(region shifted by srcShift, srcComp..).
    /// `region` is in *this* fab's index space.
    void copyFrom(const FArrayBox& src, const Box& region, int srcComp,
                  int destComp, int numComp, const IntVect& srcShift = IntVect::zero());

    /// this += a * src over region (used by RK accumulation and testing).
    void saxpy(Real a, const FArrayBox& src, const Box& region, int srcComp,
               int destComp, int numComp);

    Real min(const Box& region, int comp) const;
    Real max(const Box& region, int comp) const;
    Real sum(const Box& region, int comp) const;

    /// L2 norm of the difference over region (the paper's §IV-A validation
    /// metric between Fortran and C++ kernels).
    static Real l2Diff(const FArrayBox& a, const FArrayBox& b, const Box& region,
                       int comp);

    bool ok() const { return !data_.empty(); }

    /// Rebind to a new box / component count, reusing the existing storage
    /// when the element count matches (gpu::ScratchPool recycling).
    /// Contents are unspecified afterwards; check builds reset the shadow
    /// to fully Valid — callers wanting poison + Uninit tracking follow up
    /// with markUninitialized().
    void resize(const Box& b, int ncomp);

    /// Check builds: poison the storage with signaling NaNs and reset the
    /// shadow map to Uninit with `validBox` as the non-ghost region (called
    /// by MultiFab::define, where fabs model fresh device allocations).
    /// No-op without CROCCO_CHECK.
    void markUninitialized(const Box& validBox);

    /// Check builds: downgrade Valid ghost-region shadow cells to Stale
    /// after the valid region has been rewritten. No-op without CROCCO_CHECK.
    void invalidateGhostShadow();

#ifdef CROCCO_CHECK
    const check::FabShadow& shadowMap() const { return shadow_; }
    check::FabShadow& shadowMap() { return shadow_; }
#endif

private:
    Box box_;
    int ncomp_ = 0;
    std::vector<Real> data_;
#ifdef CROCCO_CHECK
    check::FabShadow shadow_;
#endif
};

} // namespace crocco::amr
