#include "amr/FillPatch.hpp"

#include <cassert>

namespace crocco::amr {

namespace {
int ceilDiv(int a, int b) { return (a + b - 1) / b; }
} // namespace

std::vector<Box> uncoveredBy(const Box& region, const BoxArray& ba,
                             const Geometry& geom) {
    std::vector<Box> covers;
    for (const IntVect& s : geom.periodicShifts()) {
        for (const auto& [j, isect] : ba.intersections(region.shift(s)))
            covers.push_back(isect.shift(-s));
    }
    return boxDiff(region, covers);
}

void FillPatchSingleLevel(MultiFab& dst, const MultiFab& src, const Geometry& geom,
                          const PhysBCFunct& bc, Real time) {
    assert(dst.boxArray() == src.boxArray());
    MultiFab::copy(dst, src, 0, 0, dst.nComp(), 0);
    dst.fillBoundary(geom);
    if (bc) bc(dst, geom, time);
}

void FillPatchSingleLevelBegin(MultiFab& dst, const MultiFab& src,
                               const Geometry& geom) {
    assert(dst.boxArray() == src.boxArray());
    MultiFab::copy(dst, src, 0, 0, dst.nComp(), 0);
    dst.fillBoundaryBegin(geom);
}

void FillPatchSingleLevelEnd(MultiFab& dst, const Geometry& geom,
                             const PhysBCFunct& bc, Real time) {
    dst.fillBoundaryEnd();
    if (bc) bc(dst, geom, time);
}

namespace {

// Steps 3-5 of FillPatchTwoLevels — everything after the same-level ghost
// exchange. Shared by the blocking call and FillPatchTwoLevelsEnd so the
// two paths cannot drift.
void finishTwoLevels(MultiFab& dst, const MultiFab& crseSrc,
                     const Geometry& fineGeom, const Geometry& crseGeom,
                     const IntVect& ratio, const Interpolater& interp,
                     const PhysBCFunct& fineBC, const PhysBCFunct& crseBC,
                     Real time, const MultiFab* fineCoords,
                     const MultiFab* crseCoords) {
    const int ng = dst.nGrow();
    const int ncomp = dst.nComp();

    // 3. Gather the coarse data needed under every fine ghost region into a
    // scratch MultiFab aligned with dst's (coarsened) layout. This is the
    // ParallelCopy communication FillPatch always performs (Fig. 7).
    const int ngc = ceilDiv(ng, ratio.min()) + interp.nGrowCoarse();
    const BoxArray cba = dst.boxArray().coarsen(ratio);
    MultiFab ctmp(cba, dst.distributionMap(), ncomp, ngc, dst.comm());
    ctmp.parallelCopy(crseSrc, 0, 0, ncomp, ngc, 0, "ParallelCopy", &crseGeom);
    if (crseBC) crseBC(ctmp, crseGeom, time);

    // Curvilinear interpolation additionally needs coarse physical
    // coordinates under the same regions — the paper's *extra* global
    // ParallelCopy that throttles CRoCCo 2.0's weak scaling (§VI-B).
    // Stored coordinates are globally continuous including their ghost
    // cells, so the gather reads source ghosts instead of periodic images.
    MultiFab ctmpCoords;
    if (interp.needsCoordinates()) {
        assert(fineCoords && crseCoords);
        assert(crseCoords->nGrow() >= ngc);
        ctmpCoords.define(cba, dst.distributionMap(), 3, ngc, dst.comm());
        ctmpCoords.parallelCopy(*crseCoords, 0, 0, 3, ngc, crseCoords->nGrow(),
                                "ParallelCopy_interp");
    }

    // 4. Interpolate coarse data into ghost cells no fine patch covers.
    // Ghost cells beyond non-periodic domain faces are left for fineBC;
    // cells beyond periodic faces hold periodic-image data and interpolate
    // like interior cells.
    Box interpDomain = fineGeom.domain();
    for (int d = 0; d < SpaceDim; ++d)
        if (fineGeom.isPeriodic(d)) interpDomain = interpDomain.grow(d, ng);

    for (int i = 0; i < dst.numFabs(); ++i) {
        InterpContext ctx;
        if (interp.needsCoordinates()) {
            ctx.crseCoords = &ctmpCoords.fab(i);
            ctx.fineCoords = &fineCoords->fab(i);
        }
        for (const Box& piece :
             uncoveredBy(dst.grownBox(i) & interpDomain, dst.boxArray(),
                         fineGeom)) {
            interp.interp(ctmp.fab(i), dst.fab(i), piece, 0, 0, ncomp, ratio, ctx);
        }
    }

    // 5. Physical boundary conditions.
    if (fineBC) fineBC(dst, fineGeom, time);
}

} // namespace

void FillPatchTwoLevels(MultiFab& dst, const MultiFab& fineSrc,
                        const MultiFab& crseSrc, const Geometry& fineGeom,
                        const Geometry& crseGeom, const IntVect& ratio,
                        const Interpolater& interp, const PhysBCFunct& fineBC,
                        const PhysBCFunct& crseBC, Real time,
                        const MultiFab* fineCoords, const MultiFab* crseCoords) {
    assert(dst.boxArray() == fineSrc.boxArray());

    // 1-2. Fine data everywhere it exists: valid cells, then ghost cells
    // covered by sibling fine patches (incl. periodic images).
    MultiFab::copy(dst, fineSrc, 0, 0, dst.nComp(), 0);
    dst.fillBoundary(fineGeom);

    finishTwoLevels(dst, crseSrc, fineGeom, crseGeom, ratio, interp, fineBC,
                    crseBC, time, fineCoords, crseCoords);
}

void FillPatchTwoLevelsBegin(MultiFab& dst, const MultiFab& fineSrc,
                             const Geometry& fineGeom) {
    assert(dst.boxArray() == fineSrc.boxArray());
    MultiFab::copy(dst, fineSrc, 0, 0, dst.nComp(), 0);
    dst.fillBoundaryBegin(fineGeom);
}

void FillPatchTwoLevelsEnd(MultiFab& dst, const MultiFab& crseSrc,
                           const Geometry& fineGeom, const Geometry& crseGeom,
                           const IntVect& ratio, const Interpolater& interp,
                           const PhysBCFunct& fineBC, const PhysBCFunct& crseBC,
                           Real time, const MultiFab* fineCoords,
                           const MultiFab* crseCoords) {
    dst.fillBoundaryEnd();
    finishTwoLevels(dst, crseSrc, fineGeom, crseGeom, ratio, interp, fineBC,
                    crseBC, time, fineCoords, crseCoords);
}

void InterpFromCoarseLevel(MultiFab& dst, const MultiFab& crseSrc,
                           const Geometry& fineGeom, const Geometry& crseGeom,
                           const IntVect& ratio, const Interpolater& interp,
                           const PhysBCFunct& fineBC, const PhysBCFunct& crseBC,
                           Real time, const MultiFab* fineCoords,
                           const MultiFab* crseCoords) {
    const int ng = dst.nGrow();
    const int ncomp = dst.nComp();
    const int ngc = ceilDiv(ng, ratio.min()) + interp.nGrowCoarse();
    const BoxArray cba = dst.boxArray().coarsen(ratio);
    MultiFab ctmp(cba, dst.distributionMap(), ncomp, ngc, dst.comm());
    ctmp.parallelCopy(crseSrc, 0, 0, ncomp, ngc, 0, "ParallelCopy", &crseGeom);
    if (crseBC) crseBC(ctmp, crseGeom, time);

    MultiFab ctmpCoords;
    if (interp.needsCoordinates()) {
        assert(fineCoords && crseCoords);
        assert(crseCoords->nGrow() >= ngc);
        ctmpCoords.define(cba, dst.distributionMap(), 3, ngc, dst.comm());
        ctmpCoords.parallelCopy(*crseCoords, 0, 0, 3, ngc, crseCoords->nGrow(),
                                "ParallelCopy_interp");
    }

    Box interpDomain = fineGeom.domain();
    for (int d = 0; d < SpaceDim; ++d)
        if (fineGeom.isPeriodic(d)) interpDomain = interpDomain.grow(d, ng);

    for (int i = 0; i < dst.numFabs(); ++i) {
        InterpContext ctx;
        if (interp.needsCoordinates()) {
            ctx.crseCoords = &ctmpCoords.fab(i);
            ctx.fineCoords = &fineCoords->fab(i);
        }
        interp.interp(ctmp.fab(i), dst.fab(i), dst.grownBox(i) & interpDomain, 0,
                      0, ncomp, ratio, ctx);
    }
    if (fineBC) fineBC(dst, fineGeom, time);
}

void linearExtrapolateGhost(FArrayBox& fab, const Box& interior, int srcComp,
                            int numComp) {
    assert(fab.box().contains(interior));
    auto a = fab.array();
    Box filled = interior;
    for (int d = 0; d < SpaceDim; ++d) {
        if (fab.box().length(d) == filled.length(d)) continue;
        assert(filled.length(d) >= 2);
        const int lo = filled.smallEnd(d), hi = filled.bigEnd(d);
        forEachCell(fab.box(), [&](int i, int j, int k) {
            IntVect p{i, j, k};
            // Only touch cells whose off-dimension indices are inside the
            // already-filled slab (sweep order widens `filled` one dim at a
            // time, so corners are handled by later sweeps reading earlier
            // extrapolations).
            for (int dd = 0; dd < SpaceDim; ++dd)
                if (dd != d && (p[dd] < filled.smallEnd(dd) || p[dd] > filled.bigEnd(dd)))
                    return;
            if (p[d] >= lo && p[d] <= hi) return;
            IntVect e0 = p, e1 = p;
            int m;
            if (p[d] < lo) {
                e0[d] = lo;
                e1[d] = lo + 1;
                m = lo - p[d];
            } else {
                e0[d] = hi;
                e1[d] = hi - 1;
                m = p[d] - hi;
            }
            for (int n = srcComp; n < srcComp + numComp; ++n) {
                a(p[0], p[1], p[2], n) = (1 + m) * a(e0[0], e0[1], e0[2], n) -
                                         m * a(e1[0], e1[1], e1[2], n);
            }
        });
        IntVect flo = filled.smallEnd(), fhi = filled.bigEnd();
        flo[d] = fab.box().smallEnd(d);
        fhi[d] = fab.box().bigEnd(d);
        filled = Box(flo, fhi);
    }
}

void AverageDown(const MultiFab& fine, MultiFab& crse, const IntVect& ratio,
                 int srcComp, int destComp, int numComp) {
    const double volRatio = 1.0 / static_cast<double>(ratio.product());
    for (int ci = 0; ci < crse.numFabs(); ++ci) {
        auto c = crse.array(ci);
        for (int fj = 0; fj < fine.numFabs(); ++fj) {
            const Box overlap = crse.validBox(ci) & fine.validBox(fj).coarsen(ratio);
            if (!overlap.ok()) continue;
            auto f = fine.const_array(fj);
            for (int n = 0; n < numComp; ++n) {
                forEachCell(overlap, [&](int i, int j, int k) {
                    double s = 0.0;
                    for (int dk = 0; dk < ratio[2]; ++dk)
                        for (int dj = 0; dj < ratio[1]; ++dj)
                            for (int di = 0; di < ratio[0]; ++di)
                                s += f(i * ratio[0] + di, j * ratio[1] + dj,
                                       k * ratio[2] + dk, srcComp + n);
                    c(i, j, k, destComp + n) = s * volRatio;
                });
            }
            if (auto* comm = crse.comm()) {
                const int srcRank = fine.distributionMap()[fj];
                const int dstRank = crse.distributionMap()[ci];
                if (srcRank != dstRank) {
                    comm->recordP2P(srcRank, dstRank,
                                    overlap.numPts() * numComp *
                                        static_cast<std::int64_t>(sizeof(Real)),
                                    "AverageDown");
                }
            }
        }
    }
    // Restriction rewrote coarse valid cells under the fine level, so any
    // coarse ghost data is out of date until the next exchange (check-build
    // shadow bookkeeping; no-op otherwise).
    crse.invalidateGhosts();
}

} // namespace crocco::amr
