#pragma once

#include "amr/IntVect.hpp"

#include <cstdint>
#include <iosfwd>

namespace crocco::amr {

/// A logically rectangular patch of cells: the closed index interval
/// [smallEnd, bigEnd] in each dimension. Cell-centered indexing throughout
/// (CRoCCo stores all state at cell centers).
///
/// An "empty" box has bigEnd < smallEnd in some dimension.
class Box {
public:
    /// Default: an empty (invalid) box.
    constexpr Box() : lo_(0), hi_(-1) {}
    constexpr Box(const IntVect& lo, const IntVect& hi) : lo_(lo), hi_(hi) {}

    constexpr const IntVect& smallEnd() const { return lo_; }
    constexpr const IntVect& bigEnd() const { return hi_; }
    constexpr int smallEnd(int d) const { return lo_[d]; }
    constexpr int bigEnd(int d) const { return hi_[d]; }

    constexpr bool ok() const { return lo_.allLE(hi_); }
    constexpr bool isEmpty() const { return !ok(); }

    /// Number of cells along dimension d (0 if empty).
    constexpr int length(int d) const {
        const int n = hi_[d] - lo_[d] + 1;
        return n > 0 ? n : 0;
    }
    constexpr IntVect size() const { return {length(0), length(1), length(2)}; }
    constexpr std::int64_t numPts() const {
        return ok() ? size().product() : 0;
    }

    constexpr bool contains(const IntVect& p) const {
        return lo_.allLE(p) && p.allLE(hi_);
    }
    constexpr bool contains(const Box& b) const {
        return b.ok() && lo_.allLE(b.lo_) && b.hi_.allLE(hi_);
    }
    constexpr bool intersects(const Box& b) const {
        return (*this & b).ok();
    }

    /// Intersection; may be empty.
    constexpr Box operator&(const Box& b) const {
        return {IntVect::componentMax(lo_, b.lo_), IntVect::componentMin(hi_, b.hi_)};
    }

    constexpr bool operator==(const Box& b) const { return lo_ == b.lo_ && hi_ == b.hi_; }
    constexpr bool operator!=(const Box& b) const { return !(*this == b); }

    /// Grow by n ghost cells on every face (n may be negative to shrink).
    constexpr Box grow(int n) const { return grow(IntVect(n)); }
    constexpr Box grow(const IntVect& n) const { return {lo_ - n, hi_ + n}; }
    /// Grow only along dimension d.
    constexpr Box grow(int d, int n) const {
        Box b = *this;
        b.lo_[d] -= n;
        b.hi_[d] += n;
        return b;
    }

    constexpr Box shift(const IntVect& s) const { return {lo_ + s, hi_ + s}; }
    constexpr Box shift(int d, int n) const { return shift(IntVect::basis(d) * n); }

    /// Index interval of the covering coarse cells at the given ratio.
    constexpr Box coarsen(const IntVect& ratio) const {
        return {lo_.coarsen(ratio), hi_.coarsen(ratio)};
    }
    constexpr Box coarsen(int r) const { return coarsen(IntVect(r)); }

    /// Index interval of the covered fine cells at the given ratio.
    constexpr Box refine(const IntVect& ratio) const {
        return {lo_ * ratio, (hi_ + IntVect::unit()) * ratio - IntVect::unit()};
    }
    constexpr Box refine(int r) const { return refine(IntVect(r)); }

    /// True if coarsen(ratio).refine(ratio) == *this, i.e. the box sits on
    /// ratio-aligned boundaries in every dimension.
    constexpr bool coarsenable(const IntVect& ratio) const {
        return ok() && coarsen(ratio).refine(ratio) == *this;
    }
    constexpr bool coarsenable(int r) const { return coarsenable(IntVect(r)); }

    /// Linear offset of point p within this box, Fortran (i-fastest) order.
    constexpr std::int64_t index(const IntVect& p) const {
        const std::int64_t nx = length(0), ny = length(1);
        return (p[0] - lo_[0]) + nx * ((p[1] - lo_[1]) + ny * static_cast<std::int64_t>(p[2] - lo_[2]));
    }

    /// The minimal box containing both operands.
    static constexpr Box bboxUnion(const Box& a, const Box& b) {
        if (!a.ok()) return b;
        if (!b.ok()) return a;
        return {IntVect::componentMin(a.lo_, b.lo_), IntVect::componentMax(a.hi_, b.hi_)};
    }

    /// Split this box in half along its longest dimension; returns {left,
    /// right}. The box must have at least 2 cells in that dimension.
    std::pair<Box, Box> chop() const;

    /// Split along dimension d at index cut (cut becomes the first cell of
    /// the right half).
    std::pair<Box, Box> chop(int d, int cut) const;

private:
    IntVect lo_, hi_;
};

std::ostream& operator<<(std::ostream& os, const Box& b);

/// Visit every cell of b in Fortran order, calling f(i, j, k).
template <typename F>
inline void forEachCell(const Box& b, F&& f) {
    for (int k = b.smallEnd(2); k <= b.bigEnd(2); ++k)
        for (int j = b.smallEnd(1); j <= b.bigEnd(1); ++j)
            for (int i = b.smallEnd(0); i <= b.bigEnd(0); ++i)
                f(i, j, k);
}

} // namespace crocco::amr
