#pragma once

#include "amr/Box.hpp"

#include <vector>

namespace crocco::amr {

/// Set-algebra helpers on collections of boxes. These are the workhorses of
/// regridding and ghost-region bookkeeping.

/// The part of `a` not covered by `b`, as a list of disjoint boxes.
std::vector<Box> boxDiff(const Box& a, const Box& b);

/// The part of `a` not covered by any box in `covers`, as disjoint boxes.
std::vector<Box> boxDiff(const Box& a, const std::vector<Box>& covers);

/// Total number of cells across the (assumed disjoint) list.
std::int64_t totalPts(const std::vector<Box>& boxes);

/// True if every cell of `a` is covered by some box in `covers`.
bool fullyCovered(const Box& a, const std::vector<Box>& covers);

/// Chop every box in the list so no side exceeds maxSize cells.
std::vector<Box> chopToMaxSize(std::vector<Box> boxes, const IntVect& maxSize);

/// Round each box outward so its bounds are multiples of `factor`
/// (the AMReX "blocking factor" constraint).
std::vector<Box> refineToBlockingFactor(std::vector<Box> boxes, int factor);

} // namespace crocco::amr
