#pragma once

#include "amr/FArrayBox.hpp"

namespace crocco::amr {

/// Per-fab context handed to interpolators that need physical coordinates
/// (the curvilinear scheme of §III-C). Both fabs hold 3 components (x, y, z)
/// at cell centers and must cover the regions the interpolator reads.
struct InterpContext {
    const FArrayBox* crseCoords = nullptr;
    const FArrayBox* fineCoords = nullptr;
};

/// Fine-from-coarse interpolation across AMR levels (mirrors
/// amrex::Interpolater). Implementations fill fine cells of `fineRegion`
/// from coarse data; `crse` must cover fineRegion.coarsen(ratio) grown by
/// nGrowCoarse() cells.
class Interpolater {
public:
    virtual ~Interpolater() = default;

    /// Coarse ghost cells required around the coarsened fine region.
    virtual int nGrowCoarse() const = 0;

    /// True for interpolators that read physical coordinates from the
    /// InterpContext (the curvilinear scheme). FillPatchTwoLevels prepares
    /// the coarse coordinate temp — via the global ParallelCopy the paper
    /// profiles — only when this is set.
    virtual bool needsCoordinates() const { return false; }

    /// Non-virtual entry point (defaulted context) dispatching to doInterp.
    void interp(const FArrayBox& crse, FArrayBox& fine, const Box& fineRegion,
                int srcComp, int destComp, int numComp, const IntVect& ratio,
                const InterpContext& ctx = {}) const {
        doInterp(crse, fine, fineRegion, srcComp, destComp, numComp, ratio, ctx);
    }

protected:
    virtual void doInterp(const FArrayBox& crse, FArrayBox& fine,
                          const Box& fineRegion, int srcComp, int destComp,
                          int numComp, const IntVect& ratio,
                          const InterpContext& ctx) const = 0;
};

/// Piecewise-constant injection: each fine cell takes its coarse parent's
/// value. Conservative, 1st order. Used for grid metrics bootstrap and as a
/// property-test baseline.
class PCInterp final : public Interpolater {
public:
    int nGrowCoarse() const override { return 0; }

protected:
    void doInterp(const FArrayBox& crse, FArrayBox& fine, const Box& fineRegion,
                  int srcComp, int destComp, int numComp, const IntVect& ratio,
                  const InterpContext& ctx) const override;
};

/// Tensor-product linear interpolation with uniform-grid weights — the
/// stand-in for AMReX's built-in nodal trilinear interpolator used by
/// CRoCCo 2.1. Fine cell centers sit at fixed fractional offsets of the
/// coarse lattice, so weights are compile-time rationals (multiples of 1/4
/// at ratio 2) and no coordinate data or global communication is needed.
class TrilinearInterp final : public Interpolater {
public:
    int nGrowCoarse() const override { return 1; }

protected:
    void doInterp(const FArrayBox& crse, FArrayBox& fine, const Box& fineRegion,
                  int srcComp, int destComp, int numComp, const IntVect& ratio,
                  const InterpContext& ctx) const override;
};

/// Cell-conservative linear interpolation: per-coarse-cell limited slopes
/// (minmod), preserving the coarse cell mean exactly. The conservative
/// Cartesian comparator for the conservation property tests.
class CellConservativeLinear final : public Interpolater {
public:
    int nGrowCoarse() const override { return 1; }

protected:
    void doInterp(const FArrayBox& crse, FArrayBox& fine, const Box& fineRegion,
                  int srcComp, int destComp, int numComp, const IntVect& ratio,
                  const InterpContext& ctx) const override;
};

/// CRoCCo's custom curvilinear interpolator (§III-C): trilinear in *physical*
/// space. On a curvilinear grid fine cells are not halfway between coarse
/// cells, so per-dimension weights are computed from stored physical
/// coordinates of the fine target and its enclosing coarse cells. Requires
/// the InterpContext coordinate fabs; exact for fields linear in the
/// physical coordinates, but (as the paper notes) not conservative across
/// interfaces.
class CurvilinearInterp final : public Interpolater {
public:
    int nGrowCoarse() const override { return 1; }
    bool needsCoordinates() const override { return true; }

protected:
    void doInterp(const FArrayBox& crse, FArrayBox& fine, const Box& fineRegion,
                  int srcComp, int destComp, int numComp, const IntVect& ratio,
                  const InterpContext& ctx) const override;
};

/// High-order WENO interpolation — the bandwidth-optimized conservative
/// scheme the paper describes as in development (§III-C, "future work").
/// Dimension-by-dimension 4-point reconstruction with smoothness-weighted
/// two-stencil blending: 4th-order on smooth data, degrading to one-sided
/// near discontinuities to avoid ringing across fine/coarse interfaces.
class WenoInterp final : public Interpolater {
public:
    int nGrowCoarse() const override { return 2; }

protected:
    void doInterp(const FArrayBox& crse, FArrayBox& fine, const Box& fineRegion,
                  int srcComp, int destComp, int numComp, const IntVect& ratio,
                  const InterpContext& ctx) const override;
};

} // namespace crocco::amr
