#pragma once

#include "amr/BoxArray.hpp"
#include "amr/DistributionMapping.hpp"
#include "amr/FArrayBox.hpp"
#include "amr/Geometry.hpp"
#include "parallel/SimComm.hpp"

#include <memory>
#include <source_location>
#include <vector>

namespace crocco::amr {

struct CommPattern;
struct AggregationPlan;

/// A distributed multi-component field: one FArrayBox per box of a
/// BoxArray, each allocated over its box grown by nGrow ghost cells.
/// Mirrors amrex::MultiFab.
///
/// In this in-process reproduction every "rank's" fabs live in the same
/// address space, so communication primitives (FillBoundary, ParallelCopy)
/// perform direct copies while logging the messages a distributed run would
/// send to the attached parallel::SimComm. That keeps numerics exact and
/// the communication structure observable for the Summit machine model.
class MultiFab {
public:
    // All special members are out of line: the AsyncFillState member is an
    // incomplete type here, so anything that may destroy it cannot inline.
    MultiFab();
    MultiFab(const BoxArray& ba, const DistributionMapping& dm, int ncomp,
             int ngrow, parallel::SimComm* comm = nullptr);

    // The async-fill state is move-only, but MultiFabs themselves are
    // copied (checkpoint snapshots, test fixtures). Copies never carry an
    // in-flight exchange; copying a MultiFab that has one pending throws.
    MultiFab(const MultiFab& o);
    MultiFab& operator=(const MultiFab& o);
    MultiFab(MultiFab&&) noexcept;
    MultiFab& operator=(MultiFab&&) noexcept;
    ~MultiFab();

    void define(const BoxArray& ba, const DistributionMapping& dm, int ncomp,
                int ngrow, parallel::SimComm* comm = nullptr);

    bool isDefined() const { return !fabs_.empty(); }
    const BoxArray& boxArray() const { return ba_; }
    const DistributionMapping& distributionMap() const { return dm_; }
    int nComp() const { return ncomp_; }
    int nGrow() const { return ngrow_; }
    int numFabs() const { return static_cast<int>(fabs_.size()); }
    std::int64_t numPts() const { return ba_.numPts(); }

    FArrayBox& fab(int i) { return fabs_[i]; }
    const FArrayBox& fab(int i) const { return fabs_[i]; }
    Array4<Real> array(int i) { return fabs_[i].array(); }
    Array4<const Real> const_array(int i) const { return fabs_[i].const_array(); }

    /// Valid (non-ghost) region of fab i.
    const Box& validBox(int i) const { return ba_[i]; }
    /// Allocated region of fab i (valid + ghosts).
    Box grownBox(int i) const { return ba_[i].grow(ngrow_); }

    void setVal(Real v);
    void setVal(Real v, int comp, int ncomp);

    /// Fill ghost cells of every fab from valid cells of sibling fabs,
    /// honoring the domain periodicity in geom. Ghost cells outside the
    /// domain and not covered by a periodic image are left untouched
    /// (physical BCs fill those; see core::BCFill).
    ///
    /// The copy pattern is served by the process-wide CommCache keyed on
    /// (BoxArray id, nGrow, periodic shifts): the BoxArray hash intersection
    /// runs once per layout and every later call replays the cached
    /// descriptors, producing identical copies and identical SimComm
    /// messages (see docs/performance.md).
    void fillBoundary(const Geometry& geom);

    /// Asynchronous fillBoundary, split MPI-style. Begin resolves the
    /// communication pattern (same CommCache lookup as the blocking call),
    /// enqueues the ghost copies on a gpu::Stream *without executing them*,
    /// and posts the inter-rank messages as SimComm::isend requests. End
    /// drains the stream (FIFO == pattern build order) and commits the
    /// requests via waitall in posting order — so both the ghost data and
    /// the recorded message stream are byte-identical to fillBoundary().
    /// Interior kernels that read only valid cells may run between the two.
    ///
    /// Begin with an exchange already in flight throws std::logic_error;
    /// so does End without a Begin, with the caller's file:line in the
    /// message (lint rule R5 flags unbalanced pairs statically).
    void fillBoundaryBegin(const Geometry& geom);
    void fillBoundaryEnd(
        const std::source_location& loc = std::source_location::current());

    /// Is a Begin pending its End?
    bool fillBoundaryInFlight() const { return asyncFill_ != nullptr; }

    /// General rectangle copy from another MultiFab with a possibly
    /// different BoxArray/DistributionMapping: dst valid+dstNGrow cells are
    /// filled wherever they overlap src valid cells. This is the global
    /// communication step the paper identifies as the scaling bottleneck of
    /// the custom curvilinear interpolator.
    /// `srcNGrow` > 0 additionally reads the source's (already filled)
    /// ghost cells — used to gather stored coordinates, whose ghost values
    /// are globally consistent. Patterns are cached per (src BoxArray id,
    /// dst BoxArray id, ngrows, periodicity) like fillBoundary's.
    /// The ghost scopes carry no defaults (lint rule R3): every call site
    /// states how far into the ghost regions the copy reaches.
    void parallelCopy(const MultiFab& src, int srcComp, int destComp,
                      int numComp, int dstNGrow, int srcNGrow,
                      const std::string& tag = "ParallelCopy",
                      const Geometry* geomForPeriodicity = nullptr);

    /// Component-wise copy between MultiFabs on the same BoxArray.
    static void copy(MultiFab& dst, const MultiFab& src, int srcComp,
                     int destComp, int numComp, int ngrow);

    /// Scale components in place over the valid region grown by `ngrow`
    /// ghost layers (0 = valid cells only, nGrow() = every allocated cell).
    /// The scope is explicit because the reductions (sum/norm2) are
    /// valid-only: scaling ghosts too is harmless before a fillBoundary but
    /// wrong when ghost data must stay consistent with a previous exchange.
    void mult(Real a, int comp, int numComp, int ngrow);

    /// dst = dst + a*src on the same BoxArray (valid regions).
    static void saxpy(MultiFab& dst, Real a, const MultiFab& src, int srcComp,
                      int destComp, int numComp);

    /// Reductions over valid regions (exact, no rank decomposition error).
    Real min(int comp) const;
    Real max(int comp) const;
    Real sum(int comp) const;
    Real norm2(int comp) const;

    /// L2 norm of the component-wise difference of two compatible
    /// MultiFabs over valid cells (paper §IV-A validation metric).
    static Real l2Diff(const MultiFab& a, const MultiFab& b, int comp);

    parallel::SimComm* comm() const { return comm_; }

    /// Check builds: downgrade every fab's Valid ghost-region shadow cells
    /// to Stale — called after the valid region is rewritten (RK3 update,
    /// AverageDown) so a kernel reading ghosts before the next exchange is
    /// caught. No-op without CROCCO_CHECK.
    void invalidateGhosts();

private:
    /// Execute a cached/built communication pattern: perform the data copies
    /// and record the SimComm messages (point-to-point for fillBoundary,
    /// ParallelCopy messages otherwise) in build order. With a non-null
    /// aggregation `plan` carrying off-rank pairs the exchange routes
    /// through replayAggregated instead.
    void replay(const CommPattern& pattern, const MultiFab& src, int srcComp,
                int destComp, int numComp, const std::string& tag, bool p2p,
                const AggregationPlan* plan = nullptr);

    /// Aggregated exchange (comm.aggregate): on-rank copies apply directly,
    /// every off-rank copy is packed into one ScratchPool staging buffer
    /// per (src rank, dst rank) pair with a single batched launch, exactly
    /// one SimComm message goes out per pair, and delivery unpacks with a
    /// single batched launch (verified mode delivers per pair inside the
    /// CRC/retransmit machinery instead). Field results are bitwise
    /// identical to the unaggregated replay; only the message log changes.
    void replayAggregated(const CommPattern& pattern,
                          const AggregationPlan& plan, const MultiFab& src,
                          int srcComp, int destComp, int numComp,
                          const std::string& tag, bool p2p);

    /// Derive the copy-descriptor lists the CommCache stores. Factored out
    /// of fillBoundary/parallelCopy so the check build's replay guard can
    /// re-derive a pattern on sampled cache hits and compare it against the
    /// cached copy (see docs/correctness.md).
    CommPattern buildFillBoundaryPattern(const std::vector<IntVect>& shifts) const;
    CommPattern buildParallelCopyPattern(const MultiFab& src, int dstNGrow,
                                         int srcNGrow,
                                         const std::vector<IntVect>& shifts) const;

    struct AsyncFillState;

    BoxArray ba_;
    DistributionMapping dm_;
    int ncomp_ = 0;
    int ngrow_ = 0;
    std::vector<FArrayBox> fabs_;
    parallel::SimComm* comm_ = nullptr;
    std::unique_ptr<AsyncFillState> asyncFill_;
};

} // namespace crocco::amr
