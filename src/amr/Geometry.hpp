#pragma once

#include "amr/Array4.hpp"
#include "amr/Box.hpp"

#include <array>

namespace crocco::amr {

/// Periodicity flags of the computational domain (DMR is periodic only in
/// the spanwise direction).
struct Periodicity {
    std::array<bool, 3> periodic{false, false, false};

    bool isPeriodic(int d) const { return periodic[d]; }
    bool anyPeriodic() const { return periodic[0] || periodic[1] || periodic[2]; }

    static Periodicity none() { return {}; }
    static Periodicity all() { return {{true, true, true}}; }
};

/// Description of the rectangular *computational* domain of one AMR level:
/// index box, physical extents of the computational coordinates, and cell
/// spacing. For curvilinear runs the physical (x, y, z) coordinates live in
/// a separate coordinates MultiFab (see mesh::CurvilinearGrid); this
/// Geometry then describes the uniform (ξ, η, ζ) computational space the
/// physical domain is mapped onto.
class Geometry {
public:
    Geometry() = default;
    Geometry(const Box& domain, const std::array<Real, 3>& probLo,
             const std::array<Real, 3>& probHi, Periodicity per = {});

    const Box& domain() const { return domain_; }
    const Periodicity& periodicity() const { return per_; }
    bool isPeriodic(int d) const { return per_.isPeriodic(d); }

    Real probLo(int d) const { return probLo_[d]; }
    Real probHi(int d) const { return probHi_[d]; }
    Real cellSize(int d) const { return dx_[d]; }
    std::array<Real, 3> cellSizeArray() const { return dx_; }

    /// Physical (computational-space) coordinate of cell center i along d.
    Real cellCenter(int i, int d) const {
        return probLo_[d] + (i + 0.5) * dx_[d];
    }

    /// Geometry of the same physical region refined/coarsened by ratio.
    Geometry refine(const IntVect& ratio) const;
    Geometry coarsen(const IntVect& ratio) const;

    /// Index shift vectors that map the domain onto its periodic images
    /// (includes the zero shift). Used by FillBoundary.
    std::vector<IntVect> periodicShifts() const;

private:
    Box domain_;
    std::array<Real, 3> probLo_{0, 0, 0};
    std::array<Real, 3> probHi_{1, 1, 1};
    std::array<Real, 3> dx_{1, 1, 1};
    Periodicity per_;
};

} // namespace crocco::amr
