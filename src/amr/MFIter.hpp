#pragma once

#include "amr/MultiFab.hpp"

namespace crocco::amr {

/// Fab iterator in the AMReX idiom (mirrors amrex::MFIter): the canonical
/// way kernels walk a MultiFab. On a real MPI build it visits only the
/// calling rank's fabs; here it can do the same (restrictToRank) so tests
/// can exercise the rank-local view, or visit everything (the in-process
/// default).
///
///   for (MFIter mfi(mf); mfi.isValid(); ++mfi) {
///       auto a = mf.array(mfi.index());
///       forEachCell(mfi.validBox(), ...);
///   }
class MFIter {
public:
    /// Visit every fab of `mf`.
    explicit MFIter(const MultiFab& mf) : mf_(&mf), rank_(-1) { advance(); }

    /// Visit only the fabs owned by `rank` (the distributed-run view).
    MFIter(const MultiFab& mf, int rank) : mf_(&mf), rank_(rank) { advance(); }

    bool isValid() const { return idx_ < mf_->numFabs(); }
    void operator++() {
        ++idx_;
        advance();
    }

    /// Index of the current fab within the MultiFab/BoxArray.
    int index() const { return idx_; }
    /// Valid (non-ghost) region of the current fab.
    const Box& validBox() const { return mf_->validBox(idx_); }
    /// Allocated region (valid + ghosts).
    Box grownBox() const { return mf_->grownBox(idx_); }
    /// Valid region grown by n (clipped to the allocation by the caller).
    Box growntileBox(int n) const { return mf_->validBox(idx_).grow(n); }
    /// Owning rank of the current fab.
    int owner() const { return mf_->distributionMap()[idx_]; }

private:
    void advance() {
        while (idx_ < mf_->numFabs() && rank_ >= 0 &&
               mf_->distributionMap()[idx_] != rank_) {
            ++idx_;
        }
    }

    const MultiFab* mf_;
    int rank_;
    int idx_ = 0;
};

} // namespace crocco::amr
