#include "amr/DistributionMapping.hpp"

#include "amr/Morton.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace crocco::amr {

namespace {

std::vector<int> sfcAssign(const BoxArray& ba, int nranks) {
    const int n = ba.size();
    // Order boxes by the Morton index of their small end. Box corners are
    // shifted to be non-negative first (Morton needs a non-negative lattice).
    const Box mb = ba.minimalBox();
    const IntVect shift = -mb.smallEnd();
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::vector<std::uint64_t> code(n);
    for (int i = 0; i < n; ++i) code[i] = mortonIndex(ba[i].smallEnd() + shift);
    std::stable_sort(order.begin(), order.end(),
                     [&](int a, int b) { return code[a] < code[b]; });

    // Walk the curve, cutting a new chunk whenever the running total passes
    // the ideal per-rank share.
    const double total = static_cast<double>(ba.numPts());
    const double share = total / nranks;
    std::vector<int> owner(n, 0);
    double acc = 0.0;
    int rank = 0;
    for (int i : order) {
        owner[i] = rank;
        acc += static_cast<double>(ba[i].numPts());
        while (rank < nranks - 1 && acc >= share * (rank + 1)) ++rank;
    }
    return owner;
}

std::vector<int> knapsackAssign(const BoxArray& ba, int nranks) {
    // Largest-first greedy into the currently lightest rank.
    const int n = ba.size();
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return ba[a].numPts() > ba[b].numPts();
    });
    using Load = std::pair<std::int64_t, int>; // (points, rank)
    std::priority_queue<Load, std::vector<Load>, std::greater<>> heap;
    for (int r = 0; r < nranks; ++r) heap.emplace(0, r);
    std::vector<int> owner(n, 0);
    for (int i : order) {
        auto [pts, r] = heap.top();
        heap.pop();
        owner[i] = r;
        heap.emplace(pts + ba[i].numPts(), r);
    }
    return owner;
}

} // namespace

DistributionMapping::DistributionMapping(const BoxArray& ba, int nranks,
                                         Strategy strategy)
    : nranks_(nranks) {
    assert(nranks >= 1);
    switch (strategy) {
        case Strategy::SFC:
            owner_ = sfcAssign(ba, nranks);
            break;
        case Strategy::Knapsack:
            owner_ = knapsackAssign(ba, nranks);
            break;
        case Strategy::RoundRobin:
            owner_.resize(ba.size());
            for (int i = 0; i < ba.size(); ++i) owner_[i] = i % nranks;
            break;
    }
}

DistributionMapping::DistributionMapping(std::vector<int> owners, int nranks)
    : owner_(std::move(owners)), nranks_(nranks) {
    for ([[maybe_unused]] int o : owner_) assert(o >= 0 && o < nranks_);
}

std::vector<std::int64_t> DistributionMapping::pointsPerRank(const BoxArray& ba) const {
    assert(ba.size() == size());
    std::vector<std::int64_t> pts(nranks_, 0);
    for (int i = 0; i < size(); ++i) pts[owner_[i]] += ba[i].numPts();
    return pts;
}

DistributionMapping DistributionMapping::excludeRank(int deadRank,
                                                     const BoxArray& ba) const {
    if (deadRank < 0 || deadRank >= nranks_)
        throw std::invalid_argument(
            "DistributionMapping::excludeRank: rank " +
            std::to_string(deadRank) + " out of range (nranks=" +
            std::to_string(nranks_) + ")");
    if (nranks_ <= 1)
        throw std::logic_error(
            "DistributionMapping::excludeRank: no survivor would remain");
    assert(ba.size() == size());
    const int newRanks = nranks_ - 1;
    // Survivors keep their boxes under the shrunk numbering; load per new
    // rank seeds the reassignment of the orphaned boxes.
    std::vector<int> owner(owner_.size(), -1);
    std::vector<std::int64_t> load(static_cast<std::size_t>(newRanks), 0);
    for (int i = 0; i < size(); ++i) {
        if (owner_[i] == deadRank) continue;
        const int nr = owner_[i] > deadRank ? owner_[i] - 1 : owner_[i];
        owner[i] = nr;
        load[nr] += ba[i].numPts();
    }
    for (int i = 0; i < size(); ++i) {
        if (owner[i] != -1) continue;
        int best = 0;
        for (int r = 1; r < newRanks; ++r)
            if (load[r] < load[best]) best = r;
        owner[i] = best;
        load[best] += ba[i].numPts();
    }
    return DistributionMapping(std::move(owner), newRanks);
}

double DistributionMapping::imbalance(const BoxArray& ba) const {
    const auto pts = pointsPerRank(ba);
    const std::int64_t maxPts = *std::max_element(pts.begin(), pts.end());
    const double mean = static_cast<double>(ba.numPts()) / nranks_;
    return mean > 0 ? static_cast<double>(maxPts) / mean : 1.0;
}

} // namespace crocco::amr
