#include "machine/NetworkModel.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace crocco::machine {

double NetworkModel::contention(int nodes) const {
    assert(nodes >= 1);
    return 1.0 + contentionPerDoubling * std::log2(static_cast<double>(nodes));
}

double NetworkModel::alphaTime(int nmsgs, bool gpuRun) const {
    const double perMsg = latency + (gpuRun ? gpuStagingOverhead : 0.0);
    return nmsgs * perMsg;
}

double NetworkModel::betaTime(std::int64_t bytes, int nodes, bool gpuRun,
                              int ranksPerNode) const {
    const double rankBandwidth =
        bandwidth * (gpuRun ? gpuDirectFactor : 1.0) / std::max(1, ranksPerNode);
    return static_cast<double>(bytes) / rankBandwidth * contention(nodes);
}

double NetworkModel::p2pPhaseTime(int nmsgs, std::int64_t bytes, int nodes,
                                  bool gpuRun, int ranksPerNode) const {
    return alphaTime(nmsgs, gpuRun) + betaTime(bytes, nodes, gpuRun, ranksPerNode);
}

double NetworkModel::reductionTime(int nranks, int nodes) const {
    if (nranks <= 1) return 0.0;
    const double rounds = std::ceil(std::log2(static_cast<double>(nranks)));
    return 2.0 * rounds * latency * contention(nodes);
}

double NetworkModel::parallelCopyMetaTime(int nranks, bool gpuRun) const {
    // Header exchange / source discovery touches every rank. GPU runs have
    // far fewer ranks, so the same per-rank constant applies.
    (void)gpuRun;
    return parallelCopyMetaPerRank * nranks;
}

void PhaseLoad::addMessage(int src, int dst, std::int64_t nbytes) {
    if (src == dst) return;
    assert(src >= 0 && src < nRanks() && dst >= 0 && dst < nRanks());
    msgs_[src] += 1;
    msgs_[dst] += 1;
    bytes_[src] += nbytes;
    bytes_[dst] += nbytes;
}

int PhaseLoad::maxMessages() const {
    return *std::max_element(msgs_.begin(), msgs_.end());
}

std::int64_t PhaseLoad::maxBytes() const {
    return *std::max_element(bytes_.begin(), bytes_.end());
}

std::int64_t PhaseLoad::totalBytes() const {
    std::int64_t t = 0;
    for (auto b : bytes_) t += b;
    return t / 2; // each message counted at both endpoints
}

double PhaseLoad::time(const NetworkModel& net, int nodes, bool gpuRun,
                       int ranksPerNode) const {
    // The busiest rank's message count and byte volume may peak on
    // different ranks; both bound the phase.
    return std::max(net.p2pPhaseTime(maxMessages(), maxBytes(), nodes, gpuRun,
                                     ranksPerNode),
                    0.0);
}

} // namespace crocco::machine
