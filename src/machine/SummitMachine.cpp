#include "machine/SummitMachine.hpp"

// SummitMachine is header-only today; this TU anchors the library target and
// keeps a home for future out-of-line machine logic.
namespace crocco::machine {} // namespace crocco::machine
