#pragma once

#include <cstdint>
#include <vector>

namespace crocco::machine {

/// α-β model of Summit's fat-tree EDR InfiniBand with a mild congestion
/// factor at scale, plus the cost structure of AMReX's ParallelCopy: a
/// *global* metadata coordination phase (every rank must discover who sends
/// to it when the source and destination BoxArrays differ) followed by the
/// actual data movement. The coordination term is what makes ParallelCopy
/// "global communication" (§III-B) and what erodes weak scaling at high
/// node counts (§VI-B).
struct NetworkModel {
    double latency = 1.5e-6;        ///< per point-to-point message, seconds
    double bandwidth = 23.0e9;      ///< per-NODE effective injection, B/s
                                    ///< (dual-rail EDR), shared by all the
                                    ///< node's ranks
    double gpuStagingOverhead = 6e-6; ///< extra per-message cost when message
                                      ///< buffers live in GPU memory
    double contentionPerDoubling = 0.04; ///< fat-tree congestion growth
    double parallelCopyMetaPerRank = 1.0e-6; ///< global-coordination cost,
                                             ///< seconds per participating rank
    double hostCopyBandwidth = 8.0e9; ///< on-node memcpy rate for local
                                      ///< FillPatch copies (CPU runs)
    double gpuDirectFactor = 3.0;     ///< GPU ranks drive the NIC more
                                      ///< efficiently (GPUDirect + NVLink
                                      ///< staging) than core-per-rank CPU
                                      ///< processes sharing it 42 ways

    /// Congestion multiplier at a node count (1.0 for a single node).
    double contention(int nodes) const;

    /// Latency (α) term of a point-to-point phase: the per-message fixed
    /// cost paid nmsgs times. This is the term rank-pair aggregation
    /// attacks — fewer, larger messages shrink α while β is unchanged.
    double alphaTime(int nmsgs, bool gpuRun) const;

    /// Bandwidth (β) term of a point-to-point phase: `bytes` through the
    /// rank's share of the node's injection bandwidth, inflated by
    /// fat-tree contention at `nodes`.
    double betaTime(std::int64_t bytes, int nodes, bool gpuRun,
                    int ranksPerNode) const;

    /// Time for the busiest rank's point-to-point phase: nmsgs messages
    /// totalling `bytes` (sent + received), with the node's injection
    /// bandwidth split across `ranksPerNode` ranks. Exactly
    /// alphaTime + betaTime.
    double p2pPhaseTime(int nmsgs, std::int64_t bytes, int nodes, bool gpuRun,
                        int ranksPerNode) const;

    /// MPI_Allreduce-style reduction over nranks.
    double reductionTime(int nranks, int nodes) const;

    /// ParallelCopy global metadata coordination over nranks.
    double parallelCopyMetaTime(int nranks, bool gpuRun) const;
};

/// Per-rank accumulator of message counts and bytes for one communication
/// phase; the phase completes when the busiest rank does.
class PhaseLoad {
public:
    explicit PhaseLoad(int nranks) : msgs_(nranks, 0), bytes_(nranks, 0) {}

    void addMessage(int src, int dst, std::int64_t nbytes);

    int nRanks() const { return static_cast<int>(msgs_.size()); }
    int maxMessages() const;
    std::int64_t maxBytes() const;
    std::int64_t totalBytes() const;

    /// Completion time of this phase under the network model.
    double time(const NetworkModel& net, int nodes, bool gpuRun,
                int ranksPerNode) const;

private:
    std::vector<int> msgs_;
    std::vector<std::int64_t> bytes_;
};

} // namespace crocco::machine
