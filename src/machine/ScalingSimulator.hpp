#pragma once

#include "amr/AmrCore.hpp"
#include "core/CroccoAmr.hpp"
#include "machine/FailureModel.hpp"
#include "machine/NetworkModel.hpp"
#include "machine/SummitMachine.hpp"

#include <map>
#include <string>

namespace crocco::machine {

/// Grid metadata of one AMR level at paper scale — boxes and ownership
/// only, no field allocation (4.19e10 points is just ~10^5 boxes of
/// metadata).
struct LevelMeta {
    amr::BoxArray ba;
    amr::DistributionMapping dm;
    amr::Geometry geom;
};

/// Metadata of a full hierarchy for one scaling configuration.
struct HierarchyMeta {
    std::vector<LevelMeta> levels;
    amr::IntVect refRatio{2, 2, 2};

    std::int64_t activePoints() const;
    int finestLevel() const { return static_cast<int>(levels.size()) - 1; }
};

/// Per-iteration modeled time broken into the regions the paper profiles
/// with TinyProfiler (Figs. 6-7). The advance is split the way the
/// overlapped solver splits it (core::CroccoAmr with Config::overlap):
/// an interior pass over ghost-independent shrunk boxes that can run while
/// the ghost exchange is in flight, and a halo-strip pass that cannot.
struct RegionTimes {
    /// α-β decomposition of one communication region: the busiest rank's
    /// message count and byte volume (summed over RK stages and levels)
    /// and the latency (α) vs bandwidth (β) shares of the modeled time.
    /// Rank-pair aggregation (Params::aggregateComm) shrinks messages and
    /// alpha while bytes and beta stay put — this is the observable the
    /// optimization targets.
    struct CommDecomp {
        std::int64_t messages = 0;
        std::int64_t bytes = 0;
        double alpha = 0;
        double beta = 0;
    };

    double fillBoundary = 0;      ///< p2p ghost exchange inside FillPatch
    double parallelCopy = 0;      ///< FillPatch's coarse-data gather
    double parallelCopyInterp = 0;///< the curvilinear interpolator's extra
                                  ///< global coordinate gather (v2.0 only)
    double interpCompute = 0;
    double advanceInterior = 0;   ///< WENOx/y/z + Viscous over fab interiors
    double advanceHalo = 0;       ///< same kernels over the halo strips
    double commPosted = 0;        ///< non-overlappable cost of *posting* the
                                  ///< async exchange (descriptor dispatch +
                                  ///< device pack/unpack; 0 on CPU runs)
    double update = 0;            ///< RK accumulation
    double computeDt = 0;
    double averageDown = 0;
    double regrid = 0;            ///< amortized per iteration
    double resilience = 0;        ///< modeled checkpoint + rework overhead,
                                  ///< amortized per iteration (0 unless
                                  ///< Params::modelFailures)
    double retransmit = 0;        ///< modeled CRC/NACK retransmit traffic on
                                  ///< the verified exchange path (0 unless
                                  ///< Params::modelCommFaults)
    CommDecomp fbDecomp;          ///< fillBoundary message/α-β breakdown
    CommDecomp pcDecomp;          ///< parallelCopy breakdown
    CommDecomp pcInterpDecomp;    ///< parallelCopyInterp breakdown

    /// Full WENO/viscous sweep (both passes).
    double advance() const { return advanceInterior + advanceHalo; }
    /// Communication the serial path waits on (and the overlapped path
    /// hides behind the interior pass).
    double commWait() const {
        return fillBoundary + parallelCopy + parallelCopyInterp;
    }
    double fillPatch() const { return commWait() + interpCompute; }

    /// Iteration time with the serial (non-overlapped) schedule: every
    /// region back to back. This is the pre-overlap total() plus the
    /// posting cost, which the serial path pays inline as part of its
    /// blocking exchange.
    double totalSerial() const {
        return commPosted + fillPatch() + advance() + update + computeDt +
               averageDown + regrid + resilience + retransmit;
    }
    /// Iteration time with the overlapped schedule: the interior pass runs
    /// concurrently with the in-flight exchange, so only the slower of the
    /// two is on the critical path; the halo pass (and everything that
    /// needs fresh ghosts) still serializes after both.
    double totalOverlapped() const {
        const double overlapped =
            commWait() > advanceInterior ? commWait() : advanceInterior;
        return commPosted + overlapped + advanceHalo + interpCompute + update +
               computeDt + averageDown + regrid + resilience + retransmit;
    }
    /// Communication time the overlap actually hides, as a fraction of the
    /// communication the serial path waits on (1.0 == fully hidden).
    double overlapEfficiency() const {
        const double w = commWait();
        if (w <= 0.0) return 1.0;
        const double hidden = advanceInterior < w ? advanceInterior : w;
        return hidden / w;
    }
};

/// Failure-aware checkpointing economics of one scaling case (Daly model).
struct ResilienceStats {
    std::int64_t checkpointBytes = 0; ///< conserved-state bytes per dump
    double writeTime = 0;             ///< delta: one dump, seconds
    double systemMtbf = 0;            ///< M at this node count, seconds
    double optimalInterval = 0;       ///< tau: Daly-optimal compute interval
    double overheadFraction = 0;      ///< wall-clock fraction lost
};

/// Disk-vs-buddy recovery economics of one scaling case: the same Daly
/// machinery priced twice, once with filesystem checkpoints + job-relaunch
/// restore and once with interconnect buddy mirroring + in-memory shrink
/// recovery (what CroccoAmr::recoverFromRankDeath implements).
struct RecoveryComparison {
    ResilienceStats disk;    ///< filesystem dumps, relaunch + re-read restore
    ResilienceStats buddy;   ///< partner mirroring, in-memory redistribution
    double detectionLatency = 0;   ///< waitall timeout -> shrink consensus, s
    double diskRestoreTime = 0;    ///< per-failure restore cost, disk path
    double buddyRestoreTime = 0;   ///< per-failure restore cost, buddy path
    double retransmitOverheadFraction = 0; ///< verified-exchange retransmit
                                           ///< surcharge / iteration time
};

/// Silent-data-corruption economics of one scaling case: the cost of the
/// FabGuard sweep every `interval` steps vs the recompute waste of letting
/// upsets ride undetected to the next checkpoint validation
/// (docs/resilience.md §6). This is the detection-overhead-vs-silent-waste
/// trade the resilience.sdc_interval deck key tunes.
struct SdcComparison {
    std::int64_t residentBytes = 0; ///< guarded state across the machine
    double upsetMtbf = 0;           ///< mean seconds between silent upsets
    double scanTime = 0;            ///< one CRC+digest sweep, seconds
    double detectionOverheadFraction = 0; ///< guard scan cost / wall time
    double guardedWasteFraction = 0;   ///< scan overhead + fab-repair rework
    double unguardedWasteFraction = 0; ///< silent upsets, disk-restore rework
};

/// One point of the paper's scaling studies (Table I rows, Fig. 5 axes).
struct ScalingCase {
    core::CodeVersion version = core::CodeVersion::V20;
    int nodes = 4;
    std::int64_t equivalentPoints = 0; ///< uniform-finest-resolution count
};

/// Replays one CRoCCo iteration against the Summit machine model using
/// exact AMR communication metadata (real BoxArray/DistributionMapping
/// machinery, no field data). See DESIGN.md §1 for why this substitution
/// preserves the paper's scaling behaviour.
class ScalingSimulator {
public:
    struct Params {
        SummitMachine machine;
        NetworkModel network;
        /// Fraction of the domain covered by each refined level (the DMR
        /// shock/turbulence band); defaults give the paper's 89-94% active
        /// point reduction.
        double level1Fraction = 0.20;
        double level2Fraction = 0.055;
        int blockingFactor = 8;
        int maxGridSize = 128;    ///< paper's hand-tuned value (GPU runs)
        /// Granularity of the synthesized refined-level boxes: Berger-
        /// Rigoutsos clustering of a shock band yields boxes well below
        /// max_grid_size.
        int bandTileSize = 64;
        int boxesPerCpuRank = 4;  ///< target decomposition for CPU runs
        int regridFreq = 10;
        /// Fraction of a level's bytes that move when regridding.
        double regridMoveFraction = 0.3;
        /// Node-failure + checkpoint-cost model; only charged against
        /// iterationTime when modelFailures is set.
        FailureModel failure;
        bool modelFailures = false;
        /// Charge the verified-exchange retransmit surcharge against the
        /// communication regions: each faulted message is re-sent after a
        /// NACK, so expected comm time grows by ~commFaultRate.
        bool modelCommFaults = false;
        /// Per-message fault probability on the wire (drop + corrupt rates
        /// of the injection campaign being modeled).
        double commFaultRate = 0.0;
        /// Model the fused RHS pipeline (`core.fused`): per-stage kernel
        /// costs switch to the fused KernelProfiles (shared primitive
        /// cache, two-kernel WENO sweeps, fused update), and per-fab launch
        /// overhead is replaced by a flat per-phase charge — each phase's
        /// fab sub-kernels batch into one launch, so overhead scales with
        /// kernels-per-phase, not fab count. Off = the seed's model,
        /// byte-identical results.
        bool fusedPipeline = false;
        /// Model rank-pair aggregated exchanges (`comm.aggregate`): all
        /// box-to-box copies between one (src, dst) rank pair collapse into
        /// a single packed message, so the α (latency) term scales with
        /// communicating neighbor pairs instead of intersecting box pairs.
        /// β is unchanged (same bytes), and the posting cost pays two extra
        /// device staging passes for the pack/unpack kernels.
        bool aggregateComm = false;
    };

    ScalingSimulator();
    explicit ScalingSimulator(const Params& params);
    const Params& params() const { return params_; }

    /// Build the grid hierarchy metadata for one case.
    HierarchyMeta buildHierarchy(const ScalingCase& c) const;

    /// Modeled wall time of one iteration, by region. With
    /// Params::modelFailures, RegionTimes::resilience carries the Daly
    /// checkpoint + rework overhead amortized per iteration, such that
    /// resilience / total() equals the modeled waste fraction.
    RegionTimes iterationTime(const ScalingCase& c) const;

    /// Checkpoint-interval economics for one case: dump size from the
    /// hierarchy's active points, write time from the filesystem model,
    /// MTBF from the node count, and the Daly-optimal interval + waste.
    ResilienceStats resilienceStats(const ScalingCase& c) const;

    /// Price the same case under both recovery schemes (disk restart vs
    /// in-memory buddy recovery) and report the per-failure restore costs
    /// plus the retransmit overhead of the verified exchange path.
    RecoveryComparison recoveryComparison(const ScalingCase& c) const;

    /// GPU memory demand per V100 for one case (bytes); compared against
    /// the 16 GB arena to reproduce the paper's problem-size ceiling.
    std::int64_t gpuBytesPerRank(const ScalingCase& c) const;

    /// Price the SDC guard at one verify cadence against running unguarded:
    /// scan overhead + fab-granular repair vs silent upsets discovered half
    /// a checkpoint cycle late and repaired by a disk restore + replay.
    SdcComparison sdcComparison(const ScalingCase& c, int interval) const;

    static bool isGpuVersion(core::CodeVersion v) {
        return v == core::CodeVersion::V20 || v == core::CodeVersion::V21;
    }
    static bool isAmrVersion(core::CodeVersion v) {
        return v != core::CodeVersion::V10 && v != core::CodeVersion::V11;
    }

    int ranksFor(const ScalingCase& c) const;

private:
    Params params_;
};

} // namespace crocco::machine
