#pragma once

#include <cstdint>

namespace crocco::machine {

/// MTBF-based node-failure model with Daly's optimal checkpoint interval
/// (J. T. Daly, "A higher order estimate of the optimum checkpoint interval
/// for restart dumps", FGCS 2006). At the paper's 1024-node scale a
/// several-year per-node MTBF compounds into a system interrupt every day
/// or two, so long DMR campaigns must checkpoint; this model prices that
/// overhead so ScalingSimulator::iterationTime can report it.
struct FailureModel {
    /// Mean time between failures of ONE node, hours. Summit-class nodes
    /// (2 P9 + 6 V100 + NVLink + 2 NICs) land in the few-years range.
    double nodeMtbfHours = 40000.0;
    /// Aggregate parallel-filesystem bandwidth (Summit's Alpine GPFS:
    /// ~2.5 TB/s peak), the ceiling for full-machine checkpoint writes.
    double fsAggregateBandwidth = 2.5e12;
    /// Per-node injection limit into the filesystem, B/s; caps small runs.
    double fsPerNodeBandwidth = 12.5e9;
    /// Fixed cost of one failure beyond lost work: detect, requeue,
    /// relaunch, reload the checkpoint (seconds).
    double restartPenalty = 120.0;
    /// Per-node interconnect injection bandwidth, B/s (Summit dual EDR:
    /// ~23 GB/s usable) — the channel buddy mirroring and recovery
    /// redistribution use instead of the filesystem.
    double interconnectBandwidth = 23.0e9;
    /// Time from a rank dying to its peers raising the failure at a
    /// waitall and agreeing on the shrink (ULFM detection + consensus),
    /// seconds. Calibrated against SimComm::setTimeout.
    double detectionLatency = 5.0;
    /// Silent-data-corruption rate: upsets per GB of resident state per
    /// hour that flip bits without any machine-check (the ECC-escape rate,
    /// field-study order of magnitude for HBM2/GDDR at scale).
    double sdcRatePerGBHour = 1e-5;
    /// Per-node rate at which the FabGuard scan (CRC32 + conserved-sum
    /// digest, both memory-bound single-pass sweeps) reads state, B/s.
    double sdcScanBandwidth = 100.0e9;

    /// System MTBF in seconds: node failures are independent, so the
    /// machine-level rate scales with node count.
    double systemMtbf(int nodes) const;

    /// Time to write one checkpoint of `bytes` from `nodes` nodes (delta in
    /// Daly's notation).
    double checkpointWriteTime(std::int64_t bytes, int nodes) const;

    /// Daly's higher-order optimum checkpoint interval tau for write time
    /// `delta` and system MTBF `mtbf` (compute time between checkpoint
    /// starts, excluding the dump itself).
    static double dalyInterval(double delta, double mtbf);

    /// Time to mirror one buddy checkpoint of `bytes` across `nodes` nodes:
    /// every rank streams its share to its partner concurrently over the
    /// interconnect, so the time scales with the per-node share — unlike
    /// the disk dump, which the shared filesystem caps at scale.
    double buddyCheckpointTime(std::int64_t bytes, int nodes) const;

    /// Restore cost after one failure via disk: fixed restart penalty plus
    /// re-reading the checkpoint through the filesystem.
    double diskRestoreTime(std::int64_t bytes, int nodes) const;

    /// Restore cost after one failure via the buddy copy: detection +
    /// shrink consensus, then the dead rank's share streaming from its
    /// partner to the adopting ranks over the interconnect. No job
    /// relaunch, no filesystem.
    double buddyRestoreTime(std::int64_t bytes, int nodes) const;

    /// Fraction of wall-clock time lost to resilience when checkpointing
    /// every dalyInterval: dump time, plus expected rework and restart
    /// cost per failure. First-order model, clamped to [0, 0.99].
    double wasteFraction(double delta, double mtbf) const;

    /// Same model with an explicit per-failure restore cost — prices the
    /// disk-vs-buddy recovery comparison (the two schemes differ in both
    /// delta and the restore term).
    double wasteFraction(double delta, double mtbf, double restoreCost) const;

    /// Mean seconds between silent upsets anywhere in `residentBytes` of
    /// machine-resident state (rate scales with footprint and exposure).
    /// Infinity when the rate or the footprint is zero.
    double sdcMeanTimeBetween(std::int64_t residentBytes) const;

    /// One FabGuard sweep over the per-node share of `residentBytes`
    /// (every rank scans its own fabs concurrently).
    double sdcScanTime(std::int64_t residentBytes, int nodes) const;

    /// Fraction of wall-clock time the guard costs when a sweep runs every
    /// `interval` steps of `stepTime` seconds each.
    double sdcDetectionOverhead(std::int64_t residentBytes, int nodes,
                                double stepTime, int interval) const;

    /// Expected waste from silent upsets at a given detection latency:
    /// each upset loses on average half the latency of work plus
    /// `restoreCost` to repair. With the guard on, the latency is the
    /// verify interval and the repair is a fab restore; without it, the
    /// upset rides to the next checkpoint validation and costs a disk
    /// restore + replay. Clamped to [0, 0.99].
    double sdcWasteFraction(std::int64_t residentBytes, double detectionLatencySec,
                            double restoreCost) const;
};

} // namespace crocco::machine
