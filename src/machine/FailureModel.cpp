#include "machine/FailureModel.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace crocco::machine {

double FailureModel::systemMtbf(int nodes) const {
    assert(nodes >= 1);
    return nodeMtbfHours * 3600.0 / static_cast<double>(nodes);
}

double FailureModel::checkpointWriteTime(std::int64_t bytes, int nodes) const {
    const double bw = std::min(fsAggregateBandwidth,
                               fsPerNodeBandwidth * static_cast<double>(nodes));
    return static_cast<double>(bytes) / bw;
}

double FailureModel::dalyInterval(double delta, double mtbf) {
    // Daly 2006, eq. (20): for delta < 2M,
    //   tau = sqrt(2 delta M) [1 + (1/3) sqrt(delta/2M) + (1/9)(delta/2M)]
    //         - delta,
    // degrading to tau = M when the dump costs more than 2M.
    if (delta <= 0.0) return mtbf;
    if (delta >= 2.0 * mtbf) return mtbf;
    const double x = delta / (2.0 * mtbf);
    return std::sqrt(2.0 * delta * mtbf) *
               (1.0 + std::sqrt(x) / 3.0 + x / 9.0) -
           delta;
}

double FailureModel::buddyCheckpointTime(std::int64_t bytes, int nodes) const {
    assert(nodes >= 1);
    // All partner pairs mirror concurrently, so only the per-node share
    // crosses the wire; there is no shared-resource ceiling like the
    // filesystem's aggregate bandwidth.
    const double perNode = static_cast<double>(bytes) / static_cast<double>(nodes);
    return perNode / interconnectBandwidth;
}

double FailureModel::diskRestoreTime(std::int64_t bytes, int nodes) const {
    // Re-reading the dump hits the same filesystem limits as writing it.
    return restartPenalty + checkpointWriteTime(bytes, nodes);
}

double FailureModel::buddyRestoreTime(std::int64_t bytes, int nodes) const {
    assert(nodes >= 1);
    // Only the dead rank's share moves: the partner streams it to the ranks
    // adopting the orphaned boxes. Survivors keep their data in memory, so
    // there is no relaunch and no filesystem traffic — just detection plus
    // one node's worth of state over the interconnect.
    const double perNode = static_cast<double>(bytes) / static_cast<double>(nodes);
    return detectionLatency + perNode / interconnectBandwidth;
}

double FailureModel::wasteFraction(double delta, double mtbf) const {
    return wasteFraction(delta, mtbf, restartPenalty);
}

double FailureModel::wasteFraction(double delta, double mtbf,
                                   double restoreCost) const {
    const double tau = dalyInterval(delta, mtbf);
    const double cycle = tau + delta;
    // Checkpoint tax: delta out of every cycle. Failure tax: one failure
    // every mtbf seconds loses half a cycle of work on average plus the
    // scheme's restore cost (relaunch + disk read, or detection + buddy
    // redistribution).
    const double f = delta / cycle + (0.5 * cycle + restoreCost) / mtbf;
    return std::clamp(f, 0.0, 0.99);
}

} // namespace crocco::machine
