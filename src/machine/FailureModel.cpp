#include "machine/FailureModel.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace crocco::machine {

double FailureModel::systemMtbf(int nodes) const {
    assert(nodes >= 1);
    return nodeMtbfHours * 3600.0 / static_cast<double>(nodes);
}

double FailureModel::checkpointWriteTime(std::int64_t bytes, int nodes) const {
    const double bw = std::min(fsAggregateBandwidth,
                               fsPerNodeBandwidth * static_cast<double>(nodes));
    return static_cast<double>(bytes) / bw;
}

double FailureModel::dalyInterval(double delta, double mtbf) {
    // Daly 2006, eq. (20): for delta < 2M,
    //   tau = sqrt(2 delta M) [1 + (1/3) sqrt(delta/2M) + (1/9)(delta/2M)]
    //         - delta,
    // degrading to tau = M when the dump costs more than 2M.
    if (delta <= 0.0) return mtbf;
    if (delta >= 2.0 * mtbf) return mtbf;
    const double x = delta / (2.0 * mtbf);
    return std::sqrt(2.0 * delta * mtbf) *
               (1.0 + std::sqrt(x) / 3.0 + x / 9.0) -
           delta;
}

double FailureModel::wasteFraction(double delta, double mtbf) const {
    const double tau = dalyInterval(delta, mtbf);
    const double cycle = tau + delta;
    // Checkpoint tax: delta out of every cycle. Failure tax: one failure
    // every mtbf seconds loses half a cycle of work on average plus the
    // fixed restart penalty.
    const double f = delta / cycle + (0.5 * cycle + restartPenalty) / mtbf;
    return std::clamp(f, 0.0, 0.99);
}

} // namespace crocco::machine
