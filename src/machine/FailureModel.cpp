#include "machine/FailureModel.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace crocco::machine {

double FailureModel::systemMtbf(int nodes) const {
    assert(nodes >= 1);
    return nodeMtbfHours * 3600.0 / static_cast<double>(nodes);
}

double FailureModel::checkpointWriteTime(std::int64_t bytes, int nodes) const {
    const double bw = std::min(fsAggregateBandwidth,
                               fsPerNodeBandwidth * static_cast<double>(nodes));
    return static_cast<double>(bytes) / bw;
}

double FailureModel::dalyInterval(double delta, double mtbf) {
    // Daly 2006, eq. (20): for delta < 2M,
    //   tau = sqrt(2 delta M) [1 + (1/3) sqrt(delta/2M) + (1/9)(delta/2M)]
    //         - delta,
    // degrading to tau = M when the dump costs more than 2M.
    if (delta <= 0.0) return mtbf;
    if (delta >= 2.0 * mtbf) return mtbf;
    const double x = delta / (2.0 * mtbf);
    return std::sqrt(2.0 * delta * mtbf) *
               (1.0 + std::sqrt(x) / 3.0 + x / 9.0) -
           delta;
}

double FailureModel::buddyCheckpointTime(std::int64_t bytes, int nodes) const {
    assert(nodes >= 1);
    // All partner pairs mirror concurrently, so only the per-node share
    // crosses the wire; there is no shared-resource ceiling like the
    // filesystem's aggregate bandwidth.
    const double perNode = static_cast<double>(bytes) / static_cast<double>(nodes);
    return perNode / interconnectBandwidth;
}

double FailureModel::diskRestoreTime(std::int64_t bytes, int nodes) const {
    // Re-reading the dump hits the same filesystem limits as writing it.
    return restartPenalty + checkpointWriteTime(bytes, nodes);
}

double FailureModel::buddyRestoreTime(std::int64_t bytes, int nodes) const {
    assert(nodes >= 1);
    // Only the dead rank's share moves: the partner streams it to the ranks
    // adopting the orphaned boxes. Survivors keep their data in memory, so
    // there is no relaunch and no filesystem traffic — just detection plus
    // one node's worth of state over the interconnect.
    const double perNode = static_cast<double>(bytes) / static_cast<double>(nodes);
    return detectionLatency + perNode / interconnectBandwidth;
}

double FailureModel::wasteFraction(double delta, double mtbf) const {
    return wasteFraction(delta, mtbf, restartPenalty);
}

double FailureModel::sdcMeanTimeBetween(std::int64_t residentBytes) const {
    const double gb = static_cast<double>(residentBytes) / 1.0e9;
    const double ratePerSec = sdcRatePerGBHour * gb / 3600.0;
    if (ratePerSec <= 0.0) return std::numeric_limits<double>::infinity();
    return 1.0 / ratePerSec;
}

double FailureModel::sdcScanTime(std::int64_t residentBytes, int nodes) const {
    assert(nodes >= 1);
    const double perNode =
        static_cast<double>(residentBytes) / static_cast<double>(nodes);
    return perNode / sdcScanBandwidth;
}

double FailureModel::sdcDetectionOverhead(std::int64_t residentBytes, int nodes,
                                          double stepTime, int interval) const {
    assert(interval >= 1);
    const double scan = sdcScanTime(residentBytes, nodes);
    const double window = static_cast<double>(interval) * stepTime;
    if (scan + window <= 0.0) return 0.0;
    return scan / (scan + window);
}

double FailureModel::sdcWasteFraction(std::int64_t residentBytes,
                                      double detectionLatencySec,
                                      double restoreCost) const {
    const double mtbe = sdcMeanTimeBetween(residentBytes);
    if (!std::isfinite(mtbe)) return 0.0;
    const double f = (0.5 * detectionLatencySec + restoreCost) / mtbe;
    return std::clamp(f, 0.0, 0.99);
}

double FailureModel::wasteFraction(double delta, double mtbf,
                                   double restoreCost) const {
    const double tau = dalyInterval(delta, mtbf);
    const double cycle = tau + delta;
    // Checkpoint tax: delta out of every cycle. Failure tax: one failure
    // every mtbf seconds loses half a cycle of work on average plus the
    // scheme's restore cost (relaunch + disk read, or detection + buddy
    // redistribution).
    const double f = delta / cycle + (0.5 * cycle + restoreCost) / mtbf;
    return std::clamp(f, 0.0, 0.99);
}

} // namespace crocco::machine
