#include "machine/ScalingSimulator.hpp"

#include "amr/BoxList.hpp"
#include "core/KernelProfiles.hpp"
#include "core/State.hpp"

#include <cassert>
#include <algorithm>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

namespace crocco::machine {

using amr::Box;
using amr::BoxArray;
using amr::DistributionMapping;
using amr::Geometry;
using amr::IntVect;

std::int64_t HierarchyMeta::activePoints() const {
    std::int64_t n = 0;
    for (const LevelMeta& l : levels) n += l.ba.numPts();
    return n;
}

ScalingSimulator::ScalingSimulator() : params_() {}
ScalingSimulator::ScalingSimulator(const Params& params) : params_(params) {}

int ScalingSimulator::ranksFor(const ScalingCase& c) const {
    return c.nodes * params_.machine.ranksPerNode(isGpuVersion(c.version));
}

namespace {

int roundToMultiple(double v, int m, int minV) {
    const int r = static_cast<int>(std::round(v / m)) * m;
    return std::max(r, minV);
}

/// The DMR refinement band: a diagonal strip following the incident shock /
/// Mach-stem region, spanwise-homogeneous. `fx, fy` are fractional
/// positions; `halfWidth` sets the covered area fraction.
bool inBand(double fx, double fy, double halfWidth) {
    return std::abs(fx - (0.2 + 0.5 * fy)) < halfWidth;
}

/// Tile the level domain with maxGridSize tiles and keep those whose center
/// lies in the band.
std::vector<Box> bandBoxes(const Box& domain, int tileSize, double halfWidth) {
    std::vector<Box> out;
    const Box tiles = domain.coarsen(tileSize);
    amr::forEachCell(tiles, [&](int ti, int tj, int tk) {
        const Box tile =
            Box(IntVect{ti, tj, tk}, IntVect{ti, tj, tk}).refine(tileSize) & domain;
        const double fx = (tile.smallEnd(0) + 0.5 * tile.length(0)) / domain.length(0);
        const double fy = (tile.smallEnd(1) + 0.5 * tile.length(1)) / domain.length(1);
        if (inBand(fx, fy, halfWidth)) out.push_back(tile);
    });
    return out;
}

Geometry makeGeom(const Box& domain) {
    amr::Periodicity per;
    per.periodic[2] = true; // spanwise
    return Geometry(domain, {0, 0, 0}, {1, 1, 1}, per);
}

/// One raw box-to-box transfer before any aggregation.
struct RawMsg {
    int src;
    int dst;
    std::int64_t bytes;
};

/// Fold raw transfers into a PhaseLoad. With `aggregate` set, all traffic
/// between each (src, dst) rank pair collapses into one packed message —
/// exactly what MultiFab's aggregation plan sends on the wire.
PhaseLoad foldMessages(const std::vector<RawMsg>& msgs, int nranks,
                       bool aggregate) {
    PhaseLoad load(nranks);
    if (!aggregate) {
        for (const RawMsg& m : msgs) load.addMessage(m.src, m.dst, m.bytes);
        return load;
    }
    std::map<std::pair<int, int>, std::int64_t> pairs;
    for (const RawMsg& m : msgs) {
        if (m.src != m.dst) pairs[{m.src, m.dst}] += m.bytes;
    }
    for (const auto& [pair, bytes] : pairs)
        load.addMessage(pair.first, pair.second, bytes);
    return load;
}

/// Off-rank message pattern of a FillBoundary on one level.
PhaseLoad fillBoundaryLoad(const LevelMeta& L, int ng, int ncomp, int nranks,
                           bool aggregate) {
    std::vector<RawMsg> msgs;
    const auto shifts = L.geom.periodicShifts();
    for (int i = 0; i < L.ba.size(); ++i) {
        for (const Box& g : amr::boxDiff(L.ba[i].grow(ng), L.ba[i])) {
            for (const IntVect& s : shifts) {
                for (const auto& [j, isect] : L.ba.intersections(g.shift(s))) {
                    if (i == j && s == IntVect::zero()) continue;
                    msgs.push_back({L.dm[j], L.dm[i],
                                    isect.numPts() * ncomp *
                                        static_cast<std::int64_t>(sizeof(double))});
                }
            }
        }
    }
    return foldMessages(msgs, nranks, aggregate);
}

/// Off-rank message pattern of a ParallelCopy gathering `src` data under
/// dst boxes grown by dstGrow.
PhaseLoad copyLoad(const BoxArray& dstBA, const DistributionMapping& dstDM,
                   int dstGrow, const BoxArray& srcBA,
                   const DistributionMapping& srcDM, int ncomp, int nranks,
                   bool aggregate) {
    std::vector<RawMsg> msgs;
    for (int i = 0; i < dstBA.size(); ++i) {
        for (const auto& [j, isect] : srcBA.intersections(dstBA[i].grow(dstGrow))) {
            msgs.push_back({srcDM[j], dstDM[i],
                            isect.numPts() * ncomp *
                                static_cast<std::int64_t>(sizeof(double))});
        }
    }
    return foldMessages(msgs, nranks, aggregate);
}

} // namespace

HierarchyMeta ScalingSimulator::buildHierarchy(const ScalingCase& c) const {
    const bool gpuRun = isGpuVersion(c.version);
    const bool amr = isAmrVersion(c.version);
    const int ranks = ranksFor(c);
    const double N = static_cast<double>(c.equivalentPoints);

    // Finest-resolution domain with the DMR's 2:1 x:z constraint; y is the
    // free direction used to hit the target size (§V-C).
    const int nz = roundToMultiple(std::cbrt(N / 2.0), 32, 32);
    const int nx = 2 * nz;
    const int ny = roundToMultiple(N / (static_cast<double>(nx) * nz), 32, 32);
    const Box fineDomain(IntVect::zero(), IntVect{nx - 1, ny - 1, nz - 1});

    // Box size: the paper's hand-tuned 128 for GPU runs; for CPU runs AMReX
    // decompositions target a few boxes per rank.
    const double activeEstimate =
        amr ? N / 64.0 * (1.0 + 8.0 * params_.level1Fraction +
                          64.0 * params_.level2Fraction)
            : N;
    int mgs = params_.maxGridSize;
    if (!gpuRun) {
        const double target =
            std::cbrt(activeEstimate / (static_cast<double>(ranks) *
                                        params_.boxesPerCpuRank));
        mgs = roundToMultiple(target, params_.blockingFactor, 16);
        mgs = std::min(mgs, params_.maxGridSize);
    }

    // Refined-level boxes come out of Berger-Rigoutsos clustering of the
    // shock band, which yields boxes well under max_grid_size — and small
    // enough that every rank gets work (the load balancer needs more boxes
    // than ranks, at every level, as §V-C's blocking-factor discussion
    // implies).
    auto levelTile = [&](double levelActive) {
        const double perRank = levelActive / (static_cast<double>(ranks) * 4.0);
        int t = roundToMultiple(std::cbrt(perRank), params_.blockingFactor, 16);
        return std::clamp(t, 16, std::min(mgs, params_.bandTileSize));
    };

    HierarchyMeta h;
    if (!amr) {
        BoxArray ba(amr::chopToMaxSize({fineDomain}, IntVect(mgs)));
        DistributionMapping dm(ba, ranks);
        h.levels.push_back({ba, dm, makeGeom(fineDomain)});
        return h;
    }

    const Box l0Domain = fineDomain.coarsen(4);
    const Box l1Domain = fineDomain.coarsen(2);
    BoxArray ba0(amr::chopToMaxSize({l0Domain}, IntVect(mgs)));
    h.levels.push_back({ba0, DistributionMapping(ba0, ranks), makeGeom(l0Domain)});
    const int tile1 = levelTile(params_.level1Fraction * N / 8.0);
    BoxArray ba1(bandBoxes(l1Domain, tile1, params_.level1Fraction / 2.0));
    h.levels.push_back({ba1, DistributionMapping(ba1, ranks), makeGeom(l1Domain)});
    const int tile2 = levelTile(params_.level2Fraction * N);
    BoxArray ba2(bandBoxes(fineDomain, tile2, params_.level2Fraction / 2.0));
    h.levels.push_back({ba2, DistributionMapping(ba2, ranks), makeGeom(fineDomain)});
    return h;
}

std::int64_t ScalingSimulator::gpuBytesPerRank(const ScalingCase& c) const {
    const HierarchyMeta h = buildHierarchy(c);
    const int ranks = ranksFor(c);
    std::int64_t maxPts = 0;
    std::vector<std::int64_t> per(static_cast<std::size_t>(ranks), 0);
    for (const LevelMeta& L : h.levels) {
        const auto pts = L.dm.pointsPerRank(L.ba);
        for (int r = 0; r < ranks; ++r) per[static_cast<std::size_t>(r)] += pts[static_cast<std::size_t>(r)];
    }
    for (auto p : per) maxPts = std::max(maxPts, p);
    // Resident doubles per point: U + G + Sborder + dU (4x5), coordinates
    // (3), metrics (27), kernel scratch (~11), with ghost-halo inflation.
    const double haloFactor = std::pow((128.0 + 2 * core::NGHOST) / 128.0, 3);
    return static_cast<std::int64_t>(maxPts * 61 * sizeof(double) * haloFactor);
}

RegionTimes ScalingSimulator::iterationTime(const ScalingCase& c) const {
    const HierarchyMeta h = buildHierarchy(c);
    const bool gpuRun = isGpuVersion(c.version);
    const bool cpp = c.version != core::CodeVersion::V10;
    const bool curvilinearInterp = c.version == core::CodeVersion::V12 ||
                                   c.version == core::CodeVersion::V20;
    const int ranks = ranksFor(c);
    const SummitMachine& m = params_.machine;
    const NetworkModel& net = params_.network;
    constexpr int nStages = 3;

    RegionTimes rt;
    // Charge one p2p phase (times nStages-like multiplicity) against a
    // region and record its busiest-rank message/byte counts plus the α-β
    // split of the modeled time.
    const auto chargePhase = [&](const PhaseLoad& load, double mult,
                                 RegionTimes::CommDecomp& d) {
        const int rpn = m.ranksPerNode(gpuRun);
        d.messages += static_cast<std::int64_t>(mult) * load.maxMessages();
        d.bytes += static_cast<std::int64_t>(mult) * load.maxBytes();
        d.alpha += mult * net.alphaTime(load.maxMessages(), gpuRun);
        d.beta += mult * net.betaTime(load.maxBytes(), c.nodes, gpuRun, rpn);
        return mult * load.time(net, c.nodes, gpuRun, rpn);
    };
    for (int lev = 0; lev <= h.finestLevel(); ++lev) {
        const LevelMeta& L = h.levels[static_cast<std::size_t>(lev)];
        const auto pts = L.dm.pointsPerRank(L.ba);
        std::vector<int> fabs(static_cast<std::size_t>(ranks), 0);
        for (int i = 0; i < L.ba.size(); ++i) ++fabs[static_cast<std::size_t>(L.dm[i])];

        // Busiest rank's kernel time for one sweep of one kernel.
        auto kernelTime = [&](const gpu::KernelProfile& k) {
            double worst = 0.0;
            for (int r = 0; r < ranks; ++r) {
                const auto p = pts[static_cast<std::size_t>(r)];
                if (p == 0) continue;
                double t = m.rankKernelTime(k, p, gpuRun, cpp);
                if (gpuRun && fabs[static_cast<std::size_t>(r)] > 1)
                    t += (fabs[static_cast<std::size_t>(r)] - 1) * m.v100.launchOverhead;
                worst = std::max(worst, t);
            }
            return worst;
        };

        // Fused-pipeline kernel time: the phase's per-fab sub-kernels batch
        // into one launch, so the launch overhead is a flat function of the
        // kernel count per phase instead of the rank's fab count.
        auto kernelTimeFused = [&](const gpu::KernelProfile& k,
                                   int kernelsInPhase) {
            double worst = 0.0;
            for (int r = 0; r < ranks; ++r) {
                const auto p = pts[static_cast<std::size_t>(r)];
                if (p == 0) continue;
                double t = m.rankKernelTime(k, p, gpuRun, cpp);
                if (gpuRun && kernelsInPhase > 1)
                    t += (kernelsInPhase - 1) * m.v100.launchOverhead;
                worst = std::max(worst, t);
            }
            return worst;
        };

        const double levelAdvance =
            params_.fusedPipeline
                ? nStages *
                      (kernelTimeFused(core::fusedPrimCacheProfile(), 1) +
                       3.0 * kernelTimeFused(core::fusedWenoKernelProfile(), 2) +
                       kernelTimeFused(core::fusedViscousKernelProfile(), 2))
                : nStages * (3.0 * kernelTime(core::wenoKernelProfile()) +
                             kernelTime(core::viscousKernelProfile()));
        // Interior/halo split of the advance, mirroring the overlapped
        // solver: cells within the stencil-dependency width of a patch
        // face need fresh ghosts and go to the halo pass. The model uses
        // the full NGHOST width (the viscous stencil; WENO alone needs 3),
        // matching the conservative all-dims shrink CroccoAmr applies.
        std::int64_t interiorPts = 0;
        for (int i = 0; i < L.ba.size(); ++i) {
            const Box ib = L.ba[i].grow(-core::NGHOST);
            if (ib.ok()) interiorPts += ib.numPts();
        }
        const double interiorFrac =
            L.ba.numPts() > 0
                ? static_cast<double>(interiorPts) /
                      static_cast<double>(L.ba.numPts())
                : 0.0;
        rt.advanceInterior += levelAdvance * interiorFrac;
        rt.advanceHalo += levelAdvance * (1.0 - interiorFrac);
        rt.update +=
            params_.fusedPipeline
                ? nStages * kernelTimeFused(core::fusedUpdateKernelProfile(), 1)
                : nStages * kernelTime(core::updateKernelProfile());
        rt.computeDt += kernelTime(core::computeDtProfile());

        // FillPatch's on-rank work: ghost-shell data staging (local copies)
        // and, on fine levels, ghost interpolation. On CPU runs the copies
        // go through host memory bandwidth; the GPU path folds them into
        // kernel-model traffic.
        std::vector<std::int64_t> ghostPerRank(static_cast<std::size_t>(ranks), 0);
        for (int i = 0; i < L.ba.size(); ++i) {
            ghostPerRank[static_cast<std::size_t>(L.dm[i])] +=
                L.ba[i].grow(core::NGHOST).numPts() - L.ba[i].numPts();
        }
        std::int64_t maxGhost = 0;
        for (auto g : ghostPerRank) maxGhost = std::max(maxGhost, g);
        const double ghostBytes =
            static_cast<double>(maxGhost) * core::NCONS * sizeof(double);
        if (!gpuRun) {
            rt.fillBoundary += nStages * 2.0 * ghostBytes / net.hostCopyBandwidth;
        }
        if (lev > 0) {
            double tInterp = 0.0;
            for (int r = 0; r < ranks; ++r) {
                if (ghostPerRank[static_cast<std::size_t>(r)] == 0) continue;
                tInterp = std::max(
                    tInterp, m.rankKernelTime(core::interpKernelProfile(),
                                              ghostPerRank[static_cast<std::size_t>(r)],
                                              gpuRun, cpp));
            }
            rt.interpCompute += nStages * tInterp;
        }

        const PhaseLoad fbLoad = fillBoundaryLoad(
            L, core::NGHOST, core::NCONS, ranks, params_.aggregateComm);
        rt.fillBoundary += chargePhase(fbLoad, nStages, rt.fbDecomp);
        if (gpuRun) {
            // Posting the exchange asynchronously is not free: the busiest
            // rank dispatches one copy-engine descriptor per message and
            // streams the pack/unpack staging through device memory. This
            // cost cannot hide behind the interior pass (it happens before
            // the interior kernels launch), so it is charged separately.
            // The aggregated path dispatches far fewer descriptors (one per
            // rank pair) but pays two extra DRAM passes to pack the slots
            // into the staging buffer and unpack them on receive.
            const double packFactor = params_.aggregateComm ? 4.0 : 2.0;
            rt.commPosted +=
                nStages * (fbLoad.maxMessages() * m.v100.copyEngineDispatch +
                           packFactor * static_cast<double>(fbLoad.maxBytes()) /
                               m.v100.bwDram);
        }

        if (lev > 0) {
            const LevelMeta& P = h.levels[static_cast<std::size_t>(lev - 1)];
            const int ngc = core::NGHOST / 2 + 1;
            const BoxArray cba = L.ba.coarsen(h.refRatio);
            const PhaseLoad pcLoad = copyLoad(cba, L.dm, ngc, P.ba, P.dm,
                                              core::NCONS, ranks,
                                              params_.aggregateComm);
            rt.parallelCopy +=
                chargePhase(pcLoad, nStages, rt.pcDecomp) +
                nStages * net.parallelCopyMetaTime(ranks, gpuRun);
            if (curvilinearInterp) {
                const PhaseLoad coordLoad = copyLoad(cba, L.dm, ngc, P.ba,
                                                     P.dm, 3, ranks,
                                                     params_.aggregateComm);
                rt.parallelCopyInterp +=
                    chargePhase(coordLoad, nStages, rt.pcInterpDecomp) +
                    nStages * net.parallelCopyMetaTime(ranks, gpuRun);
            }
            // AverageDown, once per iteration (RK stage 3 only).
            rt.averageDown +=
                copyLoad(P.ba, P.dm, 0, cba, L.dm, core::NCONS, ranks,
                         params_.aggregateComm)
                    .time(net, c.nodes, gpuRun, m.ranksPerNode(gpuRun)) +
                kernelTime(core::updateKernelProfile());
        }
    }

    rt.computeDt += net.reductionTime(ranks, c.nodes);

    // Regrid: tagging sweep + Berger-Rigoutsos + redistribution of the
    // moved fraction of each fine level, amortized over the interval.
    if (h.finestLevel() > 0) {
        double tRegrid = 0.0;
        for (int lev = 1; lev <= h.finestLevel(); ++lev) {
            const LevelMeta& L = h.levels[static_cast<std::size_t>(lev)];
            const double levelBytes =
                static_cast<double>(L.ba.numPts()) * core::NCONS * sizeof(double);
            const double moved = levelBytes * params_.regridMoveFraction;
            tRegrid += moved * m.ranksPerNode(gpuRun) /
                           (ranks * net.bandwidth) * net.contention(c.nodes) +
                       2.0 * net.parallelCopyMetaTime(ranks, gpuRun) +
                       L.ba.size() * 2e-6; // clustering + metadata rebuild
            // Tagging sweep on the parent level.
            const LevelMeta& P = h.levels[static_cast<std::size_t>(lev - 1)];
            const auto pts = P.dm.pointsPerRank(P.ba);
            std::int64_t maxPts = 0;
            for (auto p : pts) maxPts = std::max(maxPts, p);
            tRegrid += m.rankKernelTime(core::computeDtProfile(), maxPts, gpuRun, cpp);
        }
        rt.regrid = tRegrid / params_.regridFreq;
    }

    if (params_.modelCommFaults && params_.commFaultRate > 0.0) {
        // Expected retransmit traffic of the verified exchange: a fraction
        // commFaultRate of messages times out or fails its CRC and is
        // re-sent after a NACK, so the wire carries the p2p volume again
        // (plus the posting cost of the duplicate descriptors). First-order
        // in the rate; the geometric tail of re-faulted retransmits is
        // negligible at realistic rates.
        rt.retransmit =
            params_.commFaultRate * (rt.commWait() + rt.commPosted);
    }

    if (params_.modelFailures) {
        // Charge the Daly checkpoint + expected-rework waste against each
        // iteration so that resilience / total() == overheadFraction.
        const ResilienceStats rs = resilienceStats(c);
        const double base = rt.totalSerial(); // resilience still 0 here
        rt.resilience = base * rs.overheadFraction / (1.0 - rs.overheadFraction);
    }
    return rt;
}

ResilienceStats ScalingSimulator::resilienceStats(const ScalingCase& c) const {
    ResilienceStats rs;
    // A checkpoint stores the conserved fields of every active point (what
    // CroccoAmr::writeCheckpoint serializes); coordinates and metrics are
    // regenerated on restart.
    rs.checkpointBytes = buildHierarchy(c).activePoints() * core::NCONS *
                         static_cast<std::int64_t>(sizeof(double));
    rs.writeTime = params_.failure.checkpointWriteTime(rs.checkpointBytes,
                                                       c.nodes);
    rs.systemMtbf = params_.failure.systemMtbf(c.nodes);
    rs.optimalInterval = FailureModel::dalyInterval(rs.writeTime, rs.systemMtbf);
    rs.overheadFraction = params_.failure.wasteFraction(rs.writeTime,
                                                        rs.systemMtbf);
    return rs;
}

RecoveryComparison ScalingSimulator::recoveryComparison(
        const ScalingCase& c) const {
    const FailureModel& fm = params_.failure;
    RecoveryComparison rc;

    // Disk scheme: exactly the existing economics (filesystem dump, job
    // relaunch + checkpoint re-read on every failure).
    rc.disk = resilienceStats(c);
    rc.diskRestoreTime = fm.diskRestoreTime(rc.disk.checkpointBytes, c.nodes);

    // Buddy scheme: same state volume, but the dump streams to the partner
    // over the interconnect and a failure is repaired in memory — shrink,
    // adopt the dead rank's boxes from the partner copy, keep running.
    rc.buddy.checkpointBytes = rc.disk.checkpointBytes;
    rc.buddy.systemMtbf = rc.disk.systemMtbf;
    rc.buddy.writeTime = fm.buddyCheckpointTime(rc.buddy.checkpointBytes,
                                                c.nodes);
    rc.buddy.optimalInterval = FailureModel::dalyInterval(rc.buddy.writeTime,
                                                          rc.buddy.systemMtbf);
    rc.buddyRestoreTime = fm.buddyRestoreTime(rc.buddy.checkpointBytes,
                                              c.nodes);
    rc.buddy.overheadFraction = fm.wasteFraction(
        rc.buddy.writeTime, rc.buddy.systemMtbf, rc.buddyRestoreTime);
    rc.disk.overheadFraction = fm.wasteFraction(
        rc.disk.writeTime, rc.disk.systemMtbf, rc.diskRestoreTime);

    rc.detectionLatency = fm.detectionLatency;

    // Retransmit surcharge of the verified exchange relative to the
    // fault-free iteration, at this case's communication profile.
    if (params_.modelCommFaults && params_.commFaultRate > 0.0) {
        RegionTimes rt = iterationTime(c);
        const double surcharge = rt.retransmit;
        const double total = rt.totalSerial();
        if (total > 0.0) rc.retransmitOverheadFraction = surcharge / total;
    }
    return rc;
}

SdcComparison ScalingSimulator::sdcComparison(const ScalingCase& c,
                                              int interval) const {
    assert(interval >= 1);
    const FailureModel& fm = params_.failure;
    SdcComparison sc;
    // The guarded footprint is the conserved state — the same bytes a
    // checkpoint serializes (coordinates/metrics are regenerated, and
    // scratch is refilled before every read, so upsets there are harmless).
    sc.residentBytes = buildHierarchy(c).activePoints() * core::NCONS *
                       static_cast<std::int64_t>(sizeof(double));
    sc.upsetMtbf = fm.sdcMeanTimeBetween(sc.residentBytes);
    sc.scanTime = fm.sdcScanTime(sc.residentBytes, c.nodes);
    const double stepTime = iterationTime(c).totalSerial();
    sc.detectionOverheadFraction =
        fm.sdcDetectionOverhead(sc.residentBytes, c.nodes, stepTime, interval);
    // Guarded: an upset is caught at most `interval` steps after it lands
    // and repaired fab-granularly (one in-memory copy, priced as one scan).
    sc.guardedWasteFraction = std::clamp(
        sc.detectionOverheadFraction +
            fm.sdcWasteFraction(sc.residentBytes,
                                static_cast<double>(interval) * stepTime,
                                sc.scanTime),
        0.0, 0.99);
    // Unguarded: the upset silently poisons the trajectory until the next
    // checkpoint validation — on average half a Daly cycle of work is wrong
    // and must be replayed from a disk restore.
    const ResilienceStats rs = resilienceStats(c);
    const double cycle = rs.optimalInterval + rs.writeTime;
    sc.unguardedWasteFraction = fm.sdcWasteFraction(
        sc.residentBytes, cycle,
        fm.diskRestoreTime(rs.checkpointBytes, c.nodes) + 0.5 * cycle);
    return sc;
}

} // namespace crocco::machine
