#pragma once

#include "gpu/DeviceModel.hpp"

namespace crocco::machine {

/// Composition of one Summit node (§V-A): two 22-core IBM POWER9 sockets
/// and six NVIDIA V100s, fat-tree interconnect. CPU-only CRoCCo runs
/// MPI-rank-per-core (42 usable cores; 2 are reserved for system daemons on
/// Summit); GPU runs place one rank per GPU.
struct SummitMachine {
    int usableCoresPerNode = 42;
    int gpusPerNode = 6;
    gpu::V100Model v100;
    gpu::P9SocketModel p9;

    int ranksPerNode(bool gpuRun) const {
        return gpuRun ? gpusPerNode : usableCoresPerNode;
    }

    /// Modeled execution time of one kernel sweep over `points` grid points
    /// on a single rank's resource (one P9 core or one V100).
    double rankKernelTime(const gpu::KernelProfile& k, std::int64_t points,
                          bool gpuRun, bool cppKernels) const {
        if (gpuRun) return v100.kernelTime(k, points);
        // One core of the socket model.
        const double coreRate =
            p9.coreFlopsFortran / (cppKernels ? p9.cppSlowdown : 1.0);
        return k.flopsPerPoint * static_cast<double>(points) / coreRate;
    }
};

} // namespace crocco::machine
