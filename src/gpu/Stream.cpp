#include "gpu/Stream.hpp"

#ifdef CROCCO_CHECK
#include "check/RaceDetector.hpp"
#endif

namespace crocco::gpu {

void Event::signal() {
    {
        std::lock_guard<std::mutex> lock(m_);
        if (signaled_) return;
        signaled_ = true;
#ifdef CROCCO_CHECK
        signalTask_ = check::RaceDetector::currentTask();
#endif
    }
    cv_.notify_all();
}

void Event::wait() {
    int signaler = -1;
    {
        std::unique_lock<std::mutex> lock(m_);
        cv_.wait(lock, [this] { return signaled_; });
        signaler = signalTask_;
    }
#ifdef CROCCO_CHECK
    check::RaceDetector::instance().addHappensBefore(
        signaler, check::RaceDetector::currentTask());
#else
    (void)signaler;
#endif
}

bool Event::signaled() const {
    std::lock_guard<std::mutex> lock(m_);
    return signaled_;
}

void Stream::synchronize() {
    // Index loop, not iterators: an op may (in principle) enqueue more work.
    while (next_ < ops_.size()) {
        ops_[next_]();
        ++next_;
    }
    ops_.clear();
    next_ = 0;
}

} // namespace crocco::gpu
