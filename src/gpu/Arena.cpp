#include "gpu/Arena.hpp"

#include <algorithm>
#include <cassert>

namespace crocco::gpu {

void Arena::allocate(std::int64_t bytes) {
    assert(bytes >= 0);
    if (capacity_ != 0 && inUse_ + bytes > capacity_) {
        throw OutOfDeviceMemory("device arena overflow: in use " +
                                std::to_string(inUse_) + " B + request " +
                                std::to_string(bytes) + " B > capacity " +
                                std::to_string(capacity_) + " B");
    }
    inUse_ += bytes;
    highWater_ = std::max(highWater_, inUse_);
}

void Arena::release(std::int64_t bytes) {
    assert(bytes >= 0 && bytes <= inUse_);
    inUse_ -= bytes;
}

} // namespace crocco::gpu
