#include "gpu/Arena.hpp"

#ifdef CROCCO_CHECK
#include "check/Check.hpp"
#endif

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

namespace crocco::gpu {

void Arena::allocate(std::int64_t bytes) {
    assert(bytes >= 0);
    if (capacity_ != 0 && inUse_ + bytes > capacity_) {
        throw OutOfDeviceMemory("device arena overflow: in use " +
                                std::to_string(inUse_) + " B + request " +
                                std::to_string(bytes) + " B > capacity " +
                                std::to_string(capacity_) + " B");
    }
    inUse_ += bytes;
    highWater_ = std::max(highWater_, inUse_);
}

void Arena::release(std::int64_t bytes) {
    // An assert would compile out under NDEBUG and let the accounting go
    // silently negative (making every later wouldFit() lie); over-release
    // is a double-free-class bug and must be loud in release builds too.
    if (bytes < 0 || bytes > inUse_) {
        throw std::logic_error(
            "Arena::release of " + std::to_string(bytes) + " B with only " +
            std::to_string(inUse_) +
            " B in use (double release or mismatched allocation accounting)");
    }
    inUse_ -= bytes;
}

double Arena::canaryValue() {
    double v;
    static_assert(sizeof v == sizeof kCanaryWord);
    std::memcpy(&v, &kCanaryWord, sizeof v);
    return v;
}

void Arena::stampCanary(double* slot) { *slot = canaryValue(); }

bool Arena::canaryIntact(const double* slot) {
    std::uint64_t u;
    std::memcpy(&u, slot, sizeof u);
    return u == kCanaryWord;
}

void Arena::poisonFresh(double* p, std::size_t n) {
#ifdef CROCCO_CHECK
    const double poison = check::poisonValue();
    for (std::size_t i = 0; i < n; ++i) p[i] = poison;
#else
    (void)p;
    (void)n;
#endif
}

ScratchPool& ScratchPool::instance() {
    static ScratchPool pool;
    return pool;
}

ScratchPool::Lease ScratchPool::acquire(const amr::Box& box, int ncomp) {
    std::unique_ptr<amr::FArrayBox> fab;
    {
        std::lock_guard<std::mutex> lock(m_);
        auto it = free_.find(Key{box.numPts(), ncomp});
        if (it != free_.end() && !it->second.empty()) {
            fab = std::move(it->second.back());
            it->second.pop_back();
            ++hits_;
        } else {
            ++misses_;
        }
    }
    if (fab) {
        fab->resize(box, ncomp); // same element count: rebind, no realloc
    } else {
        fab = std::make_unique<amr::FArrayBox>(box, ncomp);
    }
#ifdef CROCCO_CHECK
    // Hit or miss, scratch behaves like a fresh device allocation: poisoned
    // storage, Uninit shadow, fresh fab id.
    fab->markUninitialized(box);
#endif
    return Lease(this, std::move(fab));
}

void ScratchPool::release(std::unique_ptr<amr::FArrayBox> fab) {
    // A tripped canary means some kernel wrote past the box it leased (or
    // an upset hit the allocator header region). The buffer is evidence of
    // corruption, not a recyclable resource: drop it and count the trip.
    // This runs from Lease's destructor, so it must not throw.
    if (!fab->canaryIntact()) {
        std::lock_guard<std::mutex> lock(m_);
        ++canaryTrips_;
        return;
    }
    const Key key{fab->box().numPts(), fab->nComp()};
    std::lock_guard<std::mutex> lock(m_);
    free_[key].push_back(std::move(fab));
}

std::uint64_t ScratchPool::hits() const {
    std::lock_guard<std::mutex> lock(m_);
    return hits_;
}

std::uint64_t ScratchPool::misses() const {
    std::lock_guard<std::mutex> lock(m_);
    return misses_;
}

std::uint64_t ScratchPool::canaryTrips() const {
    std::lock_guard<std::mutex> lock(m_);
    return canaryTrips_;
}

void ScratchPool::resetStats() {
    std::lock_guard<std::mutex> lock(m_);
    hits_ = misses_ = canaryTrips_ = 0;
}

void ScratchPool::clear() {
    std::lock_guard<std::mutex> lock(m_);
    free_.clear();
}

} // namespace crocco::gpu
