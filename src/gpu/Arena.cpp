#include "gpu/Arena.hpp"

#ifdef CROCCO_CHECK
#include "check/Check.hpp"
#endif

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace crocco::gpu {

void Arena::allocate(std::int64_t bytes) {
    assert(bytes >= 0);
    if (capacity_ != 0 && inUse_ + bytes > capacity_) {
        throw OutOfDeviceMemory("device arena overflow: in use " +
                                std::to_string(inUse_) + " B + request " +
                                std::to_string(bytes) + " B > capacity " +
                                std::to_string(capacity_) + " B");
    }
    inUse_ += bytes;
    highWater_ = std::max(highWater_, inUse_);
}

void Arena::release(std::int64_t bytes) {
    // An assert would compile out under NDEBUG and let the accounting go
    // silently negative (making every later wouldFit() lie); over-release
    // is a double-free-class bug and must be loud in release builds too.
    if (bytes < 0 || bytes > inUse_) {
        throw std::logic_error(
            "Arena::release of " + std::to_string(bytes) + " B with only " +
            std::to_string(inUse_) +
            " B in use (double release or mismatched allocation accounting)");
    }
    inUse_ -= bytes;
}

void Arena::poisonFresh(double* p, std::size_t n) {
#ifdef CROCCO_CHECK
    const double poison = check::poisonValue();
    for (std::size_t i = 0; i < n; ++i) p[i] = poison;
#else
    (void)p;
    (void)n;
#endif
}

} // namespace crocco::gpu
