#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace crocco::gpu {

/// Thrown when an allocation would exceed device capacity — the condition
/// the paper hit at >2.0e5 points per V100 (16 GB), which dictated both
/// scaling problem sizes.
class OutOfDeviceMemory : public std::runtime_error {
public:
    explicit OutOfDeviceMemory(const std::string& what) : std::runtime_error(what) {}
};

/// Accounting model of a GPU memory arena (mirrors amrex::Arena). Tracks
/// live bytes and the high-water mark against a fixed capacity; used by the
/// solver to pre-allocate kernel scratch from host code (the paper's fix for
/// in-kernel dynamic allocation) and by the machine model to validate that
/// scaling configurations fit in 16 GB per V100.
class Arena {
public:
    /// capacityBytes == 0 means unlimited (host arena).
    explicit Arena(std::int64_t capacityBytes = 0) : capacity_(capacityBytes) {}

    /// Register an allocation; throws OutOfDeviceMemory on overflow.
    void allocate(std::int64_t bytes);
    /// Release a prior allocation; throws std::logic_error on over-release
    /// (releasing more than is in use, or a negative size) so accounting
    /// bugs surface in release builds instead of corrupting inUse().
    void release(std::int64_t bytes);

    std::int64_t inUse() const { return inUse_; }
    std::int64_t highWater() const { return highWater_; }
    std::int64_t capacity() const { return capacity_; }

    /// Would `bytes` more fit right now?
    bool wouldFit(std::int64_t bytes) const {
        return capacity_ == 0 || inUse_ + bytes <= capacity_;
    }

    void reset() { inUse_ = highWater_ = 0; }

    /// The 16 GB HBM2 arena of a Summit V100.
    static Arena v100() { return Arena(16ll * 1024 * 1024 * 1024); }

    /// Under CROCCO_CHECK, stamp a freshly allocated (device-modeled)
    /// buffer with check::poisonValue() signaling NaNs so uninitialized
    /// reads that escape the shadow validity map still blow up the first
    /// time arithmetic touches them. No-op in unchecked builds.
    static void poisonFresh(double* p, std::size_t n);

private:
    std::int64_t capacity_;
    std::int64_t inUse_ = 0;
    std::int64_t highWater_ = 0;
};

/// RAII registration of one allocation against an Arena.
class DeviceAllocation {
public:
    DeviceAllocation(Arena& arena, std::int64_t bytes) : arena_(&arena), bytes_(bytes) {
        arena_->allocate(bytes_);
    }
    ~DeviceAllocation() {
        if (arena_) arena_->release(bytes_);
    }
    DeviceAllocation(const DeviceAllocation&) = delete;
    DeviceAllocation& operator=(const DeviceAllocation&) = delete;
    DeviceAllocation(DeviceAllocation&& o) noexcept : arena_(o.arena_), bytes_(o.bytes_) {
        o.arena_ = nullptr;
    }
    DeviceAllocation& operator=(DeviceAllocation&&) = delete;

    std::int64_t bytes() const { return bytes_; }

private:
    Arena* arena_;
    std::int64_t bytes_;
};

} // namespace crocco::gpu
