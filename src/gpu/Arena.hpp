#pragma once

#include "amr/Box.hpp"
#include "amr/FArrayBox.hpp"

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace crocco::gpu {

/// Thrown when an allocation would exceed device capacity — the condition
/// the paper hit at >2.0e5 points per V100 (16 GB), which dictated both
/// scaling problem sizes.
class OutOfDeviceMemory : public std::runtime_error {
public:
    explicit OutOfDeviceMemory(const std::string& what) : std::runtime_error(what) {}
};

/// Accounting model of a GPU memory arena (mirrors amrex::Arena). Tracks
/// live bytes and the high-water mark against a fixed capacity; used by the
/// solver to pre-allocate kernel scratch from host code (the paper's fix for
/// in-kernel dynamic allocation) and by the machine model to validate that
/// scaling configurations fit in 16 GB per V100.
class Arena {
public:
    /// capacityBytes == 0 means unlimited (host arena).
    explicit Arena(std::int64_t capacityBytes = 0) : capacity_(capacityBytes) {}

    /// Register an allocation; throws OutOfDeviceMemory on overflow.
    void allocate(std::int64_t bytes);
    /// Release a prior allocation; throws std::logic_error on over-release
    /// (releasing more than is in use, or a negative size) so accounting
    /// bugs surface in release builds instead of corrupting inUse().
    void release(std::int64_t bytes);

    std::int64_t inUse() const { return inUse_; }
    std::int64_t highWater() const { return highWater_; }
    std::int64_t capacity() const { return capacity_; }

    /// Would `bytes` more fit right now?
    bool wouldFit(std::int64_t bytes) const {
        return capacity_ == 0 || inUse_ + bytes <= capacity_;
    }

    void reset() { inUse_ = highWater_ = 0; }

    /// The 16 GB HBM2 arena of a Summit V100.
    static Arena v100() { return Arena(16ll * 1024 * 1024 * 1024); }

    /// Allocation-header canary (docs/resilience.md §6): every FArrayBox
    /// over-allocates one trailing element stamped with this pattern, so a
    /// kernel overrun past the allocated box — or an SDC hit on the
    /// allocator's bookkeeping region — trips a cheap O(1) check instead of
    /// silently corrupting the neighbouring allocation. ScratchPool checks
    /// the word on every lease return; FabGuard checks it during verifies.
    static constexpr std::uint64_t kCanaryWord = 0x5AFEC0DE0DDC0FFEull;
    /// The canary pattern bit-cast to the element type fabs store.
    static double canaryValue();
    /// Stamp the canary into the guard slot.
    static void stampCanary(double* slot);
    /// True while the guard slot still holds the exact canary bits.
    static bool canaryIntact(const double* slot);

    /// Under CROCCO_CHECK, stamp a freshly allocated (device-modeled)
    /// buffer with check::poisonValue() signaling NaNs so uninitialized
    /// reads that escape the shadow validity map still blow up the first
    /// time arithmetic touches them. No-op in unchecked builds.
    static void poisonFresh(double* p, std::size_t n);

private:
    std::int64_t capacity_;
    std::int64_t inUse_ = 0;
    std::int64_t highWater_ = 0;
};

/// Reusing free-list of kernel-scratch FArrayBoxes, keyed by
/// (element count, components) — the arena-backed answer to the paper's
/// "no dynamic allocation inside kernels" rule applied one level up:
/// wenoFluxPortable used to construct two fresh fabs (cell-flux scratch +
/// face flux) per direction per fab per RK stage, ~18 heap allocations per
/// fab per step. The pool hands back a previously released buffer of the
/// same size instead; FArrayBox::resize rebinds it to the new box without
/// touching the heap.
///
/// Check builds preserve the sNaN-poisoning semantics of fresh scratch:
/// every acquire (hit or miss) runs markUninitialized(), which re-poisons
/// the storage and installs a fresh shadow map with a new fab id — so
/// stale contents can never be read silently, and the race detector never
/// confuses two tasks' leases of the same recycled storage (the pool's
/// mutex orders release before re-acquire).
///
/// Thread-safe: concurrent pool tasks acquire/release under one mutex
/// (two short critical sections per lease; the fab itself is touched
/// outside the lock).
class ScratchPool {
public:
    static ScratchPool& instance();

    class Lease {
    public:
        Lease(ScratchPool* pool, std::unique_ptr<amr::FArrayBox> fab)
            : pool_(pool), fab_(std::move(fab)) {}
        ~Lease() {
            if (pool_ && fab_) pool_->release(std::move(fab_));
        }
        Lease(Lease&& o) noexcept : pool_(o.pool_), fab_(std::move(o.fab_)) {
            o.pool_ = nullptr;
        }
        Lease(const Lease&) = delete;
        Lease& operator=(const Lease&) = delete;
        Lease& operator=(Lease&&) = delete;

        amr::FArrayBox& fab() { return *fab_; }

    private:
        ScratchPool* pool_;
        std::unique_ptr<amr::FArrayBox> fab_;
    };

    /// Get a scratch fab covering `box` with `ncomp` components. Contents
    /// are unspecified (check builds: poisoned + shadow-Uninit, exactly
    /// like a MultiFab-defined fab). Returned to the free list when the
    /// Lease dies.
    Lease acquire(const amr::Box& box, int ncomp);

    /// A flat 1-D staging buffer of `nvals` values (a single-component fab
    /// over an i-extruded box) — the shape of an aggregated rank-pair
    /// message. Leased from the same free list, so repeated exchanges of a
    /// steady hierarchy reuse one buffer per rank pair.
    Lease acquireLinear(std::int64_t nvals) {
        return acquire(amr::Box(amr::IntVect{0, 0, 0},
                                amr::IntVect{static_cast<int>(nvals) - 1, 0, 0}),
                       1);
    }

    std::uint64_t hits() const;
    std::uint64_t misses() const;
    /// Leases returned with a tripped allocation canary. The corrupted
    /// buffer is discarded instead of recycled (its neighbour may already
    /// be overwritten), and the trip is counted here rather than thrown:
    /// release runs from Lease's destructor, where an exception would
    /// terminate. FabGuard's verify surfaces the counter as a finding.
    std::uint64_t canaryTrips() const;
    void resetStats();
    /// Drop all pooled buffers (tests / memory pressure).
    void clear();

private:
    void release(std::unique_ptr<amr::FArrayBox> fab);

    using Key = std::pair<std::int64_t, int>; ///< (numPts, ncomp)

    mutable std::mutex m_;
    std::map<Key, std::vector<std::unique_ptr<amr::FArrayBox>>> free_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t canaryTrips_ = 0;
};

/// RAII registration of one allocation against an Arena.
class DeviceAllocation {
public:
    DeviceAllocation(Arena& arena, std::int64_t bytes) : arena_(&arena), bytes_(bytes) {
        arena_->allocate(bytes_);
    }
    ~DeviceAllocation() {
        if (arena_) arena_->release(bytes_);
    }
    DeviceAllocation(const DeviceAllocation&) = delete;
    DeviceAllocation& operator=(const DeviceAllocation&) = delete;
    DeviceAllocation(DeviceAllocation&& o) noexcept : arena_(o.arena_), bytes_(o.bytes_) {
        o.arena_ = nullptr;
    }
    DeviceAllocation& operator=(DeviceAllocation&&) = delete;

    std::int64_t bytes() const { return bytes_; }

private:
    Arena* arena_;
    std::int64_t bytes_;
};

} // namespace crocco::gpu
