#pragma once

#include <cstdint>
#include <string>

namespace crocco::gpu {

/// Static cost profile of one numerics kernel: work and traffic per grid
/// point. Counted from the kernel source (see core/KernelProfiles.cpp);
/// these drive the roofline model and the execution-time models below.
struct KernelProfile {
    std::string name;
    double flopsPerPoint = 0.0;      ///< double-precision flops
    double dramBytesPerPoint = 0.0;  ///< bytes moved to/from HBM
    double l2BytesPerPoint = 0.0;    ///< bytes moved through L2
    double l1BytesPerPoint = 0.0;    ///< bytes moved through L1
    double registersPerThread = 0.0; ///< register pressure (occupancy driver)

    /// Arithmetic intensity (flop/byte) at each memory level.
    double aiDram() const { return flopsPerPoint / dramBytesPerPoint; }
    double aiL2() const { return flopsPerPoint / l2BytesPerPoint; }
    double aiL1() const { return flopsPerPoint / l1BytesPerPoint; }
};

/// Execution-time model of one Summit NVIDIA V100 (16 GB HBM2).
///
/// The paper's Nsight profiling (Fig. 4) shows the CRoCCo kernels are
/// bandwidth-bound at every level of the hierarchy with theoretical
/// occupancy limited to 12.5% by register pressure. A hierarchical-roofline
/// time model reproduces exactly those effects:
///
///   t = t_launch + max(flops/peak_eff, bytes_m/BW_m for each level m)
///
/// with bandwidths de-rated at small problem sizes (the device does not
/// saturate until enough threads are resident), which produces the paper's
/// size-dependent speedup band of 2.5x-15.8x (Fig. 3).
struct V100Model {
    double peakFlops = 7.8e12;   ///< DP peak the paper quotes
    double bwDram = 900e9;       ///< HBM2 STREAM-like ceiling
    double bwL2 = 2.5e12;
    double bwL1 = 14.0e12;
    double occupancyAt32Regs = 1.0; ///< occupancy with no register pressure
    double registerFile = 65536;    ///< 32-bit registers per SM
    double launchOverhead = 12e-6;  ///< per kernel launch, seconds
    double pointsToSaturate = 2.0e5; ///< ~full-device problem size
    double copyEngineDispatch = 1.2e-6; ///< per async-copy enqueue+engine setup, s

    /// Theoretical occupancy given register pressure (paper: 12.5%).
    double occupancy(const KernelProfile& k) const;

    /// Fraction of peak bandwidth achieved with n resident points.
    double saturation(std::int64_t npoints) const;

    /// Modeled kernel execution time in seconds.
    double kernelTime(const KernelProfile& k, std::int64_t npoints) const;

    /// Achieved DP flop rate implied by kernelTime (for the roofline plot).
    double achievedFlops(const KernelProfile& k, std::int64_t npoints) const;

    /// Modeled cost of one stream-ordered asynchronous ghost copy: the
    /// copy-engine dispatch plus staging the payload through HBM (read +
    /// write). This is the *non-overlappable* device-side cost a
    /// fillBoundaryBegin pays per descriptor; the network transit itself
    /// is charged by machine::NetworkModel and can hide behind interior
    /// compute.
    double asyncCopyTime(std::int64_t bytes) const {
        return copyEngineDispatch + 2.0 * static_cast<double>(bytes) / bwDram;
    }
};

/// Execution-time model of one 22-core IBM POWER9 socket running
/// MPI-rank-per-core, as in CRoCCo 1.x. The Fortran rate anchors the model;
/// the portable C++ kernels run a constant factor slower (the paper's
/// measured ~1.2x, which our own two kernel variants also exhibit — see
/// bench/fig3_kernels).
struct P9SocketModel {
    int cores = 22;
    double coreFlopsFortran = 0.85e9; ///< effective DP rate per core, Fortran
    double cppSlowdown = 1.2;

    double kernelTime(const KernelProfile& k, std::int64_t npoints, bool cpp) const;
};

} // namespace crocco::gpu
