#pragma once

#include "amr/Box.hpp"
#include "gpu/LaunchStats.hpp"
#include "gpu/ThreadPool.hpp"

#include <cstdint>
#include <limits>
#include <vector>

namespace crocco::gpu {

using amr::Box;

/// Kernel-launch abstractions mirroring the AMReX GPU API the paper ports
/// CRoCCo onto (amrex::ParallelFor / amrex::launch).
///
/// There is no physical GPU in this reproduction, so kernels execute on the
/// host — but through the same one-thread-per-cell decomposition the GPU
/// port uses. That preserves the port's correctness constraints (the paper's
/// data-race issues with shared scratch arrays are real here too: a kernel
/// that races on scratch produces wrong answers in tests), while the
/// execution-time cost of running on a V100 is charged separately by
/// DeviceModel.
///
/// Execution is tiled over k-slabs and dispatched onto the deterministic
/// ThreadPool: with gpu.num_threads > 1 the slabs of one launch run
/// concurrently, each slab on a fixed thread. Per-cell kernels write
/// disjoint cells, so results are bitwise identical for every thread count;
/// reductions combine fixed-decomposition partials in slab order for the
/// same guarantee. `launch` (whole-box kernels with interior loop-carried
/// dependencies) is never auto-parallelized.
///
/// Under -DCROCCO_CHECK every pool-parallel launch is watched by the
/// check::RaceDetector: overlapping same-fab writes (or read-write pairs)
/// between concurrently scheduled tasks abort with both task footprints.
/// The serial fallbacks (numThreads() == 1, single task, nested launches)
/// are deterministic and go unrecorded — run the check suite with
/// GPU_NUM_THREADS > 1 to exercise the detector (see docs/correctness.md).

namespace detail {

/// One k-plane of `box`: the fixed tile decomposition shared by ParallelFor
/// and the reductions. Independent of the thread count so that reduction
/// partials (and their combination order) never depend on it.
inline Box kSlab(const Box& box, int t) {
    const int k = box.smallEnd(2) + t;
    return Box({box.smallEnd(0), box.smallEnd(1), k},
               {box.bigEnd(0), box.bigEnd(1), k});
}

inline int numKSlabs(const Box& box) { return box.length(2); }

} // namespace detail

/// One logical thread per cell of `box`: f(i, j, k).
template <typename F>
inline void ParallelFor(const Box& box, F&& f) {
    if (!box.ok()) return;
    LaunchStats::add();
    ThreadPool& pool = ThreadPool::instance();
    if (pool.numThreads() == 1 || ThreadPool::inParallelRegion()) {
        amr::forEachCell(box, f);
        return;
    }
    pool.run(detail::numKSlabs(box),
             [&](int t) { amr::forEachCell(detail::kSlab(box, t), f); });
}

/// One logical thread per (cell, component): f(i, j, k, n).
template <typename F>
inline void ParallelFor(const Box& box, int ncomp, F&& f) {
    if (!box.ok()) return;
    LaunchStats::add();
    ThreadPool& pool = ThreadPool::instance();
    if (pool.numThreads() == 1 || ThreadPool::inParallelRegion()) {
        for (int n = 0; n < ncomp; ++n)
            amr::forEachCell(box, [&](int i, int j, int k) { f(i, j, k, n); });
        return;
    }
    const int nk = detail::numKSlabs(box);
    pool.run(ncomp * nk, [&](int t) {
        const int n = t / nk;
        amr::forEachCell(detail::kSlab(box, t % nk),
                         [&](int i, int j, int k) { f(i, j, k, n); });
    });
}

/// Fab/index-level parallelism: f(i) for i in [0, n) — one task per fab of a
/// MultiFab (or per independent work item). Kernels launched from inside f
/// run serially on the calling worker (nested launches do not spawn).
template <typename F>
inline void ParallelForIndex(int n, F&& f) {
    ThreadPool::instance().run(n, f);
}

/// Batched fab-level launch: the per-fab sub-kernels of one pipeline phase
/// are aggregated into `kernelsPerTask` device launches with per-fab work
/// descriptors (the fused RHS pipeline's launch amortization — AMReX's
/// fused launches / Parthenon's hierarchical par_for). The phase charges
/// `kernelsPerTask` launches once, flat in the fab count; the gpu::
/// ParallelFor calls made inside f run under a BatchedPhaseScope and are
/// not counted again. Execution semantics are identical to
/// ParallelForIndex (same pool, same deterministic stripe schedule).
template <typename F>
inline void BatchedParallelForIndex(int n, int kernelsPerTask, F&& f) {
    if (n <= 0) return;
    LaunchStats::addBatched(static_cast<std::uint64_t>(kernelsPerTask));
    ThreadPool::instance().run(n, [&](int t) {
        BatchedPhaseScope batch;
        f(t);
    });
}

/// Whole-box launch: the functor receives the box and iterates itself
/// (mirrors amrex::launch, used for kernels with interior loop carried
/// dependencies that must not be auto-parallelized per cell).
template <typename F>
inline void launch(const Box& box, F&& f) {
    f(box);
}

/// Device-wide min-reduction over cells (mirrors amrex::ReduceData /
/// ReduceOps with ReduceOpMin, used by ComputeDt). Per-slab partials are
/// combined in slab order; min is exact, so the result equals the serial
/// sweep bitwise for any thread count.
template <typename F>
inline double ReduceMin(const Box& box, F&& f) {
    double m = std::numeric_limits<double>::infinity();
    if (!box.ok()) return m;
    LaunchStats::add();
    ThreadPool& pool = ThreadPool::instance();
    if (pool.numThreads() == 1 || ThreadPool::inParallelRegion()) {
        amr::forEachCell(box, [&](int i, int j, int k) {
            const double v = f(i, j, k);
            if (v < m) m = v;
        });
        return m;
    }
    const int nk = detail::numKSlabs(box);
    std::vector<double> partial(static_cast<std::size_t>(nk),
                                std::numeric_limits<double>::infinity());
    pool.run(nk, [&](int t) {
        double& p = partial[static_cast<std::size_t>(t)];
        amr::forEachCell(detail::kSlab(box, t), [&](int i, int j, int k) {
            const double v = f(i, j, k);
            if (v < p) p = v;
        });
    });
    for (double p : partial)
        if (p < m) m = p;
    return m;
}

template <typename F>
inline double ReduceMax(const Box& box, F&& f) {
    double m = -std::numeric_limits<double>::infinity();
    if (!box.ok()) return m;
    LaunchStats::add();
    ThreadPool& pool = ThreadPool::instance();
    if (pool.numThreads() == 1 || ThreadPool::inParallelRegion()) {
        amr::forEachCell(box, [&](int i, int j, int k) {
            const double v = f(i, j, k);
            if (v > m) m = v;
        });
        return m;
    }
    const int nk = detail::numKSlabs(box);
    std::vector<double> partial(static_cast<std::size_t>(nk),
                                -std::numeric_limits<double>::infinity());
    pool.run(nk, [&](int t) {
        double& p = partial[static_cast<std::size_t>(t)];
        amr::forEachCell(detail::kSlab(box, t), [&](int i, int j, int k) {
            const double v = f(i, j, k);
            if (v > p) p = v;
        });
    });
    for (double p : partial)
        if (p > m) m = p;
    return m;
}

} // namespace crocco::gpu
