#pragma once

#include "amr/Box.hpp"

#include <cstdint>
#include <limits>

namespace crocco::gpu {

using amr::Box;

/// Kernel-launch abstractions mirroring the AMReX GPU API the paper ports
/// CRoCCo onto (amrex::ParallelFor / amrex::launch).
///
/// There is no physical GPU in this reproduction, so kernels execute on the
/// host — but through the same one-thread-per-cell decomposition the GPU
/// port uses. That preserves the port's correctness constraints (the paper's
/// data-race issues with shared scratch arrays are real here too: a kernel
/// that races on scratch produces wrong answers in tests), while the
/// execution-time cost of running on a V100 is charged separately by
/// DeviceModel.

/// One logical thread per cell of `box`: f(i, j, k).
template <typename F>
inline void ParallelFor(const Box& box, F&& f) {
    amr::forEachCell(box, f);
}

/// One logical thread per (cell, component): f(i, j, k, n).
template <typename F>
inline void ParallelFor(const Box& box, int ncomp, F&& f) {
    for (int n = 0; n < ncomp; ++n)
        amr::forEachCell(box, [&](int i, int j, int k) { f(i, j, k, n); });
}

/// Whole-box launch: the functor receives the box and iterates itself
/// (mirrors amrex::launch, used for kernels with interior loop carried
/// dependencies that must not be auto-parallelized per cell).
template <typename F>
inline void launch(const Box& box, F&& f) {
    f(box);
}

/// Device-wide min-reduction over cells (mirrors amrex::ReduceData /
/// ReduceOps with ReduceOpMin, used by ComputeDt).
template <typename F>
inline double ReduceMin(const Box& box, F&& f) {
    double m = std::numeric_limits<double>::infinity();
    amr::forEachCell(box, [&](int i, int j, int k) {
        const double v = f(i, j, k);
        if (v < m) m = v;
    });
    return m;
}

template <typename F>
inline double ReduceMax(const Box& box, F&& f) {
    double m = -std::numeric_limits<double>::infinity();
    amr::forEachCell(box, [&](int i, int j, int k) {
        const double v = f(i, j, k);
        if (v > m) m = v;
    });
    return m;
}

} // namespace crocco::gpu
