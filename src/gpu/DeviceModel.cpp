#include "gpu/DeviceModel.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace crocco::gpu {

double V100Model::occupancy(const KernelProfile& k) const {
    if (k.registersPerThread <= 0) return occupancyAt32Regs;
    // Threads resident per SM are limited by the register file; occupancy is
    // that limit over the 2048-thread architectural maximum, quantized to
    // whole warps as the hardware does.
    const double threads = registerFile / k.registersPerThread;
    const double warps = std::floor(threads / 32.0);
    return std::clamp(warps * 32.0 / 2048.0, 1.0 / 64.0, occupancyAt32Regs);
}

double V100Model::saturation(std::int64_t npoints) const {
    // Throughput ramps with resident parallelism following a
    // latency-throughput ("n-half") curve.
    const double n = static_cast<double>(npoints);
    const double nhalf = pointsToSaturate / 8.0;
    return n / (n + nhalf);
}

double V100Model::kernelTime(const KernelProfile& k, std::int64_t npoints) const {
    assert(npoints >= 0);
    const double n = static_cast<double>(npoints);
    const double sat = saturation(npoints);
    const double occ = occupancy(k);
    // Low occupancy costs latency-hiding ability: model effective bandwidth
    // as proportional to sqrt(occupancy/occ_needed) capped at 1. With the
    // paper's 12.5% occupancy this lands HBM throughput near the ~45% of
    // peak implied by its achieved 300 GF/s at AI ~0.33 (Fig. 4).
    const double occFactor = std::min(1.0, std::sqrt(occ / 0.06));
    const double tCompute = k.flopsPerPoint * n / (peakFlops * occ * sat);
    const double tDram = k.dramBytesPerPoint * n / (bwDram * occFactor * sat);
    const double tL2 = k.l2BytesPerPoint * n / (bwL2 * occFactor * sat);
    const double tL1 = k.l1BytesPerPoint * n / (bwL1 * occFactor * sat);
    return launchOverhead + std::max({tCompute, tDram, tL2, tL1});
}

double V100Model::achievedFlops(const KernelProfile& k, std::int64_t npoints) const {
    const double t = kernelTime(k, npoints);
    return k.flopsPerPoint * static_cast<double>(npoints) / t;
}

double P9SocketModel::kernelTime(const KernelProfile& k, std::int64_t npoints,
                                 bool cpp) const {
    const double rate = coreFlopsFortran * cores / (cpp ? cppSlowdown : 1.0);
    return k.flopsPerPoint * static_cast<double>(npoints) / rate;
}

} // namespace crocco::gpu
