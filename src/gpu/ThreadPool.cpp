#include "gpu/ThreadPool.hpp"

#ifdef CROCCO_CHECK
#include "check/RaceDetector.hpp"
#endif

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace crocco::gpu {

namespace {
thread_local bool tlInTask = false;
thread_local bool tlInBatch = false;
thread_local const char* tlLaunchTag = nullptr;
} // namespace

ScopedLaunchTag::ScopedLaunchTag(const char* tag) : prev_(tlLaunchTag) {
    tlLaunchTag = tag;
}

ScopedLaunchTag::~ScopedLaunchTag() { tlLaunchTag = prev_; }

const char* ScopedLaunchTag::current() {
    return tlLaunchTag ? tlLaunchTag : "";
}

BatchedPhaseScope::BatchedPhaseScope() : prev_(tlInBatch) { tlInBatch = true; }

BatchedPhaseScope::~BatchedPhaseScope() { tlInBatch = prev_; }

struct ThreadPool::Impl {
    std::mutex m;
    std::condition_variable wake;  // workers wait here for a new epoch
    std::condition_variable done;  // caller waits here for stripe completion
    std::vector<std::thread> workers;

    // Job state, guarded by m (read by workers only between wake/done).
    const std::function<void(int)>* job = nullptr;
    int ntasks = 0;
    int nthreads = 1;
    std::uint64_t epoch = 0; // bumped per run(); workers run once per epoch
    int remaining = 0;       // workers still executing the current epoch
    bool stop = false;

    std::exception_ptr firstError;
    std::mutex errM;

    // Schedule tracing (single-threaded only; no locking needed).
    bool tracing = false;
    std::vector<TracedLaunch> trace;

    void runStripe(int tid) {
        tlInTask = true;
        try {
            for (int t = tid; t < ntasks; t += nthreads) {
#ifdef CROCCO_CHECK
                // Bind this worker's Array4 accesses to task t; nested
                // launches run inline here, so their accesses are charged to
                // the enclosing task — exactly the serialization rule.
                check::RaceDetector::TaskScope scope(t);
#endif
                (*job)(t);
            }
        } catch (...) {
            std::lock_guard<std::mutex> lk(errM);
            if (!firstError) firstError = std::current_exception();
        }
        tlInTask = false;
    }

    void workerLoop(int tid) {
        std::uint64_t seen = 0;
        for (;;) {
            {
                std::unique_lock<std::mutex> lk(m);
                wake.wait(lk, [&] { return stop || epoch != seen; });
                if (stop) return;
                seen = epoch;
            }
            runStripe(tid);
            {
                std::lock_guard<std::mutex> lk(m);
                if (--remaining == 0) done.notify_one();
            }
        }
    }

    void spawn(int n) {
        nthreads = n;
        for (int t = 1; t < n; ++t)
            workers.emplace_back([this, t] { workerLoop(t); });
    }

    void joinAll() {
        {
            std::lock_guard<std::mutex> lk(m);
            stop = true;
        }
        wake.notify_all();
        for (auto& w : workers) w.join();
        workers.clear();
        stop = false;
        // Workers spawned later start with seen == 0; the epoch must restart
        // there too, or they would "see" a phantom new epoch with no job.
        epoch = 0;
        job = nullptr;
        remaining = 0;
    }
};

ThreadPool::ThreadPool() : impl_(new Impl) {
    nthreads_ = defaultNumThreads();
    impl_->spawn(nthreads_);
}

ThreadPool::~ThreadPool() {
    impl_->joinAll();
    delete impl_;
}

ThreadPool& ThreadPool::instance() {
    static ThreadPool pool;
    return pool;
}

int ThreadPool::defaultNumThreads() {
    if (const char* env = std::getenv("GPU_NUM_THREADS")) {
        const int n = std::atoi(env);
        if (n >= 1) return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

bool ThreadPool::inParallelRegion() { return tlInTask; }

bool ThreadPool::inBatchedPhase() { return tlInBatch; }

void ThreadPool::setNumThreads(int n) {
    if (n < 1) n = 1;
    if (n == nthreads_) return;
    impl_->joinAll();
    nthreads_ = n;
    impl_->spawn(n);
}

void ThreadPool::beginScheduleTrace() {
    if (nthreads_ != 1)
        throw std::logic_error(
            "ThreadPool::beginScheduleTrace requires numThreads() == 1");
    impl_->trace.clear();
    impl_->tracing = true;
}

std::vector<TracedLaunch> ThreadPool::endScheduleTrace() {
    impl_->tracing = false;
    return std::move(impl_->trace);
}

void ThreadPool::run(int ntasks, const std::function<void(int)>& f) {
    if (ntasks <= 0) return;
    if (nthreads_ == 1 || ntasks == 1 || tlInTask) {
        if (impl_->tracing && !tlInTask) {
            std::vector<double> taskNs(static_cast<std::size_t>(ntasks));
            for (int t = 0; t < ntasks; ++t) {
                const auto t0 = std::chrono::steady_clock::now();
                f(t);
                taskNs[static_cast<std::size_t>(t)] =
                    std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
            }
            impl_->trace.push_back(
                TracedLaunch{ScopedLaunchTag::current(), std::move(taskNs)});
            return;
        }
        for (int t = 0; t < ntasks; ++t) f(t);
        return;
    }
#ifdef CROCCO_CHECK
    check::RaceDetector::instance().beginLaunch(ntasks);
#endif
    {
        std::lock_guard<std::mutex> lk(impl_->m);
        impl_->job = &f;
        impl_->ntasks = ntasks;
        impl_->remaining = nthreads_ - 1;
        ++impl_->epoch;
    }
    impl_->wake.notify_all();
    impl_->runStripe(0); // the caller is thread 0
    {
        std::unique_lock<std::mutex> lk(impl_->m);
        impl_->done.wait(lk, [&] { return impl_->remaining == 0; });
        impl_->job = nullptr;
    }
#ifdef CROCCO_CHECK
    // Scan before rethrowing a task exception: a race report should not be
    // masked by the exception it may well have caused.
    check::RaceDetector::instance().endLaunch();
#endif
    if (impl_->firstError) {
        auto e = impl_->firstError;
        impl_->firstError = nullptr;
        std::rethrow_exception(e);
    }
}

} // namespace crocco::gpu
