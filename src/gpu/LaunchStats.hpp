#pragma once

#include "gpu/ThreadPool.hpp"

#include <atomic>
#include <cstdint>

namespace crocco::gpu {

/// Global counter of modeled device kernel launches — the observable the
/// paper's launch-overhead story (§IV, deep AMR levels => many small boxes
/// => per-launch cost dominates) is told against.
///
/// Counting semantics:
///  * Every gpu::ParallelFor / reduction call models exactly one device
///    kernel launch (the k-slab tiling is an execution detail of one
///    launch, not extra launches), and each per-fab MultiFab arithmetic
///    sweep (setVal / mult / saxpy) models one launch per fab.
///  * A *batched* phase (gpu::BatchedParallelForIndex) aggregates the
///    per-fab sub-kernels of one pipeline phase into a fixed number of
///    launches with per-fab work descriptors: the phase charges
///    `kernelsPerTask` launches once, and the nested per-fab launches are
///    suppressed while the batch is active (ThreadPool::inBatchedPhase()).
///
/// perf::TinyProfiler::Scope snapshots count() on entry/exit, giving every
/// profiled region a launch column; the counter itself is a relaxed atomic
/// so pool workers can count concurrently without ordering cost.
class LaunchStats {
public:
    static std::uint64_t count() {
        return counter().load(std::memory_order_relaxed);
    }

    /// One (or n) modeled launches, suppressed inside a batched phase.
    static void add(std::uint64_t n = 1) {
        if (ThreadPool::inBatchedPhase()) return;
        counter().fetch_add(n, std::memory_order_relaxed);
    }

    /// Launches of a batched phase itself — never suppressed.
    static void addBatched(std::uint64_t n) {
        counter().fetch_add(n, std::memory_order_relaxed);
    }

    static void reset() { counter().store(0, std::memory_order_relaxed); }

private:
    static std::atomic<std::uint64_t>& counter() {
        static std::atomic<std::uint64_t> c{0};
        return c;
    }
};

} // namespace crocco::gpu
