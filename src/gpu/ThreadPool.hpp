#pragma once

#include <functional>
#include <string>
#include <vector>

namespace crocco::gpu {

/// One top-level launch recorded by ThreadPool schedule tracing: the tag
/// active at launch (see ScopedLaunchTag) and each task's serial duration.
struct TracedLaunch {
    std::string tag;
    std::vector<double> taskNs;
};

/// RAII label applied to every launch traced while in scope — lets
/// bench/overlap tell the interior-pass launches from the fused halo+End
/// launch from everything else. Cheap (one thread_local pointer), so call
/// sites may tag unconditionally whether or not tracing is active.
class ScopedLaunchTag {
public:
    explicit ScopedLaunchTag(const char* tag);
    ~ScopedLaunchTag();
    ScopedLaunchTag(const ScopedLaunchTag&) = delete;
    ScopedLaunchTag& operator=(const ScopedLaunchTag&) = delete;

    /// Tag of the innermost live scope on this thread ("" when none).
    static const char* current();

private:
    const char* prev_;
};

/// RAII marker for one task of a *batched* launch (the fused RHS pipeline's
/// launch aggregation): while alive on a thread, gpu::LaunchStats::add()
/// suppresses counting, because the per-fab sub-kernels executed inside the
/// batch are work descriptors of one aggregated device launch, not launches
/// of their own. See gpu::BatchedParallelForIndex.
class BatchedPhaseScope {
public:
    BatchedPhaseScope();
    ~BatchedPhaseScope();
    BatchedPhaseScope(const BatchedPhaseScope&) = delete;
    BatchedPhaseScope& operator=(const BatchedPhaseScope&) = delete;

private:
    bool prev_;
};

/// Deterministic host thread pool behind the tiled gpu::ParallelFor /
/// reduction launches (the host-backend analog of Parthenon-style tiled
/// kernel execution).
///
/// Design constraints, in order:
///  1. *Determinism.* There is no work stealing: task t always runs on
///     thread t % numThreads(), so the tile→thread assignment is a pure
///     function of (ntasks, numThreads) and never of timing. Combined with
///     fixed-order combination of reduction partials (see MultiFab norms),
///     every result is bitwise independent of the thread count.
///  2. *Safety under nesting.* A task that itself calls ParallelFor (fab-
///     level parallelism over kernels that launch per-cell loops) must not
///     deadlock: nested launches detect they are inside a pool task and run
///     serially, exactly as nested device launches serialize on one stream.
///  3. *1 thread == today's behavior.* With numThreads() == 1 nothing is
///     dispatched and callers' serial Fortran-order loops are preserved.
///
/// Configured via the ParmParse key `gpu.num_threads`; the environment
/// variable GPU_NUM_THREADS overrides the deck, and with neither set the
/// default is std::thread::hardware_concurrency().
class ThreadPool {
public:
    static ThreadPool& instance();

    int numThreads() const { return nthreads_; }

    /// Resize the pool (clamped to >= 1). Joins and respawns workers; must
    /// not be called from inside a pool task.
    void setNumThreads(int n);

    /// GPU_NUM_THREADS env var if set, else hardware_concurrency().
    static int defaultNumThreads();

    /// True while the calling thread is executing a pool task (used to
    /// serialize nested launches).
    static bool inParallelRegion();

    /// True while the calling thread is inside a BatchedPhaseScope (used by
    /// gpu::LaunchStats to fold a batched phase's per-fab sub-kernels into
    /// the batch's launch count).
    static bool inBatchedPhase();

    /// Run f(t) for every t in [0, ntasks). f must write disjoint data for
    /// distinct t (the per-cell kernel contract). Runs serially in task
    /// order when numThreads() == 1, ntasks <= 1, or when nested inside
    /// another run(). The first exception thrown by any task is rethrown on
    /// the calling thread after all tasks finish.
    void run(int ntasks, const std::function<void(int)>& f);

    /// Schedule tracing (bench/thread_scaling, bench/overlap support).
    /// While active — it requires numThreads() == 1 — every top-level run()
    /// records its tasks' serial durations (ns) plus the active
    /// ScopedLaunchTag, one TracedLaunch per launch, so a bench can compute
    /// the critical path of the deterministic stripe schedule (task t on
    /// thread t % T) at any hypothetical thread count without executing it.
    /// Nested launches are serial by contract and charge their parent task.
    void beginScheduleTrace();
    /// Stop tracing and return the launches recorded since begin.
    std::vector<TracedLaunch> endScheduleTrace();

    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

private:
    ThreadPool();
    struct Impl;
    Impl* impl_;
    int nthreads_ = 1;
};

inline int numThreads() { return ThreadPool::instance().numThreads(); }
inline void setNumThreads(int n) { ThreadPool::instance().setNumThreads(n); }

} // namespace crocco::gpu
