#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <vector>

namespace crocco::gpu {

/// One-shot completion event, the CPU stand-in for cudaEvent_t.
///
/// Used to order ThreadPool tasks within one launch: the producer calls
/// signal() as its *last* action, consumers call wait() as their *first* —
/// that discipline is what makes the signal/wait pair a valid
/// happens-before edge, and under -DCROCCO_CHECK it is reported to
/// check::RaceDetector so the conflict scan treats the two tasks as
/// sequenced rather than concurrent (the split advance's End-drain writes
/// ghost cells the halo tasks read).
///
/// signal() is idempotent; wait() returns immediately once signaled. With
/// the pool's deterministic stripe schedule the signaling task (task 0 of
/// the fused halo launch) always starts first on the calling thread, so a
/// launch mixing one signaler with waiting tasks cannot deadlock.
class Event {
public:
    /// Mark complete and wake all waiters. Safe to call more than once.
    void signal();

    /// Block until signal(). Records the happens-before edge
    /// (signaler task -> calling task) with the race detector when both
    /// sides ran inside a tracked pool launch.
    void wait();

    bool signaled() const;

    /// RAII signal-on-scope-exit. The producer constructs it at the top of
    /// its task body so waiters are released even if the body throws
    /// (ThreadPool captures the exception; without the guard every waiting
    /// worker would hang forever behind the failed producer).
    class SignalGuard {
    public:
        explicit SignalGuard(Event& e) : e_(e) {}
        ~SignalGuard() { e_.signal(); }
        SignalGuard(const SignalGuard&) = delete;
        SignalGuard& operator=(const SignalGuard&) = delete;

    private:
        Event& e_;
    };

private:
    mutable std::mutex m_;
    std::condition_variable cv_;
    bool signaled_ = false;
    int signalTask_ = -1; ///< race-detector task index of the signaler
};

/// Deferred FIFO work queue, the CPU stand-in for a CUDA stream.
///
/// fillBoundaryBegin enqueues its ghost-exchange copies here instead of
/// executing them; synchronize() (called from fillBoundaryEnd) drains them
/// on the calling thread in enqueue order. Because the drain order equals
/// the build order of the communication pattern, the data written — and
/// the SimComm messages committed alongside — are byte-identical to the
/// blocking fillBoundary path.
///
/// Single producer, single consumer: Begin enqueues and End drains from
/// the same logical owner (the MultiFab's async-fill state), so no
/// internal locking is needed.
class Stream {
public:
    void enqueue(std::function<void()> op) { ops_.push_back(std::move(op)); }

    /// Operations enqueued and not yet executed.
    std::size_t pending() const { return ops_.size() - next_; }

    /// Execute every pending operation on the calling thread, FIFO.
    void synchronize();

private:
    std::vector<std::function<void()>> ops_;
    std::size_t next_ = 0;
};

} // namespace crocco::gpu
