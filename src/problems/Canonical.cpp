#include "problems/Canonical.hpp"

#include "mesh/GridMetrics.hpp"

#include <cmath>

namespace crocco::problems {

using amr::Box;
using amr::Geometry;
using amr::IntVect;
using core::NCONS;

namespace {

constexpr Real kPi = 3.14159265358979323846;

std::array<Real, NCONS> consState(Real gamma, Real rho, Real u, Real v, Real w,
                                  Real p) {
    return {rho, rho * u, rho * v, rho * w,
            p / (gamma - 1.0) + 0.5 * rho * (u * u + v * v + w * w)};
}

} // namespace

// ---------------------------------------------------------------- SodTube

SodTube::SodTube(int nx, int ny, int nz) {
    const Box domain(IntVect::zero(), IntVect{nx - 1, ny - 1, nz - 1});
    amr::Periodicity per;
    per.periodic[1] = per.periodic[2] = true;
    geom_ = Geometry(domain, {0, 0, 0}, {1, 1, 1}, per);
    mapping_ = std::make_shared<mesh::UniformMapping>(
        std::array<Real, 3>{0, 0, 0}, std::array<Real, 3>{1, 0.25, 0.25});
}

core::GasModel SodTube::gas() const { return {}; }

core::InitFunct SodTube::initialCondition() const {
    return [](Real x, Real, Real) {
        return x < 0.5 ? consState(1.4, 1.0, 0, 0, 0, 1.0)
                       : consState(1.4, 0.125, 0, 0, 0, 0.1);
    };
}

amr::PhysBCFunct SodTube::boundaryConditions() const {
    core::BCSpec spec;
    spec.face[0][0] = {core::BCType::Outflow, {}};
    spec.face[0][1] = {core::BCType::Outflow, {}};
    spec.face[1][0] = spec.face[1][1] = {core::BCType::Periodic, {}};
    spec.face[2][0] = spec.face[2][1] = {core::BCType::Periodic, {}};
    return core::makeBCFunct(spec);
}

core::CroccoAmr::Config SodTube::solverConfig(bool amrEnabled) const {
    core::CroccoAmr::Config cfg;
    cfg.amrInfo.maxLevel = amrEnabled ? 1 : 0;
    cfg.amrInfo.blockingFactor = 8;
    cfg.amrInfo.maxGridSize = 32;
    cfg.gas = gas();
    cfg.cfl = 0.4;
    cfg.regridFreq = 4;
    cfg.tagging = {core::TagCriterion::DensityGradient, 0.02};
    cfg.interp = core::InterpChoice::Trilinear;
    return cfg;
}

// ------------------------------------------------------- IsentropicVortex

IsentropicVortex::IsentropicVortex(int n, bool curvilinear) {
    const Box domain(IntVect::zero(), IntVect{n - 1, n - 1, 7});
    geom_ = Geometry(domain, {0, 0, 0}, {1, 1, 1}, amr::Periodicity::all());
    const std::array<Real, 3> lo{0, 0, 0};
    const std::array<Real, 3> hi{domainLen, domainLen, domainLen * 8.0 / n};
    if (curvilinear) {
        mapping_ = std::make_shared<mesh::InteriorWavyMapping>(lo, hi, 0.02);
    } else {
        mapping_ = std::make_shared<mesh::UniformMapping>(lo, hi);
    }
}

core::GasModel IsentropicVortex::gas() const { return {}; }

std::array<Real, NCONS> IsentropicVortex::exact(Real x, Real y, Real, Real t) const {
    const Real gamma = 1.4;
    const Real beta = 5.0;
    // Vortex center advects with the free stream; wrap periodically.
    Real cx = domainLen / 2 + uInf * t, cy = domainLen / 2 + vInf * t;
    Real dx = x - cx, dy = y - cy;
    dx -= domainLen * std::round(dx / domainLen);
    dy -= domainLen * std::round(dy / domainLen);
    const Real r2 = dx * dx + dy * dy;
    const Real e = std::exp(0.5 * (1.0 - r2));
    const Real u = uInf - beta / (2 * kPi) * e * dy;
    const Real v = vInf + beta / (2 * kPi) * e * dx;
    const Real T = 1.0 - (gamma - 1.0) * beta * beta / (8 * gamma * kPi * kPi) *
                             std::exp(1.0 - r2);
    const Real rho = std::pow(T, 1.0 / (gamma - 1.0));
    const Real p = rho * T;
    return consState(gamma, rho, u, v, 0.0, p);
}

core::InitFunct IsentropicVortex::initialCondition() const {
    return [this](Real x, Real y, Real z) { return exact(x, y, z, 0.0); };
}

core::CroccoAmr::Config IsentropicVortex::solverConfig() const {
    core::CroccoAmr::Config cfg;
    cfg.amrInfo.maxLevel = 0;
    cfg.amrInfo.blockingFactor = 8;
    cfg.amrInfo.maxGridSize = 64;
    cfg.gas = gas();
    cfg.cfl = 0.4;
    return cfg;
}

// ------------------------------------------------------------ TaylorGreen

TaylorGreen::TaylorGreen(int n, Real reynolds) : reynolds_(reynolds) {
    const Box domain(IntVect::zero(), IntVect{n - 1, n - 1, n - 1});
    geom_ = Geometry(domain, {0, 0, 0}, {1, 1, 1}, amr::Periodicity::all());
    const Real L = 2 * kPi;
    mapping_ = std::make_shared<mesh::UniformMapping>(std::array<Real, 3>{0, 0, 0},
                                                      std::array<Real, 3>{L, L, L});
}

core::GasModel TaylorGreen::gas() const {
    core::GasModel g;
    // Mach ~0.1 reference flow with unit velocity scale: mu = rho0 V L / Re.
    g.muRef = 1.0 / reynolds_;
    g.Tref = 1.0 / (g.Rgas); // T of the reference state (rho0 = p0 = 1)
    return g;
}

core::InitFunct TaylorGreen::initialCondition() const {
    return [](Real x, Real y, Real z) {
        const Real gamma = 1.4;
        const Real V0 = 0.1; // keeps the flow near-incompressible
        const Real p0 = 1.0;
        const Real rho0 = 1.0;
        const Real u = V0 * std::sin(x) * std::cos(y) * std::cos(z);
        const Real v = -V0 * std::cos(x) * std::sin(y) * std::cos(z);
        const Real p = p0 + rho0 * V0 * V0 / 16.0 * (std::cos(2 * x) + std::cos(2 * y)) *
                                (std::cos(2 * z) + 2.0);
        return consState(gamma, rho0, u, v, 0.0, p);
    };
}

core::CroccoAmr::Config TaylorGreen::solverConfig() const {
    core::CroccoAmr::Config cfg;
    cfg.amrInfo.maxLevel = 0;
    cfg.amrInfo.blockingFactor = 8;
    cfg.amrInfo.maxGridSize = 64;
    cfg.gas = gas();
    cfg.cfl = 0.4;
    return cfg;
}

Real TaylorGreen::kineticEnergy(const core::CroccoAmr& solver) {
    Real ke = 0.0;
    const auto& U = solver.state(0);
    const auto& metrics = solver.metrics(0);
    const auto dxi = solver.geom(0).cellSizeArray();
    const Real dV = dxi[0] * dxi[1] * dxi[2];
    for (int f = 0; f < U.numFabs(); ++f) {
        auto u = U.const_array(f);
        auto m = metrics.const_array(f);
        amr::forEachCell(U.validBox(f), [&](int i, int j, int k) {
            const Real rho = u(i, j, k, core::URHO);
            const Real mx = u(i, j, k, core::UMX);
            const Real my = u(i, j, k, core::UMY);
            const Real mz = u(i, j, k, core::UMZ);
            ke += 0.5 * (mx * mx + my * my + mz * mz) / rho *
                  mesh::jacobian(m, i, j, k) * dV;
        });
    }
    return ke;
}

} // namespace crocco::problems
