#pragma once

#include "core/CroccoAmr.hpp"

namespace crocco::problems {

using amr::Real;

/// Canonical verification problems used by the test suite and the
/// convergence studies. Each bundles geometry, gas model, initial condition
/// and boundary conditions for the CroccoAmr driver.

/// Sod shock tube along x: validates shock/contact/rarefaction capture
/// against the exact Riemann solution. Outflow in x, periodic in y and z.
class SodTube {
public:
    SodTube(int nx, int ny = 8, int nz = 8);
    const amr::Geometry& geometry() const { return geom_; }
    std::shared_ptr<const mesh::Mapping> mapping() const { return mapping_; }
    core::GasModel gas() const;
    core::InitFunct initialCondition() const;
    amr::PhysBCFunct boundaryConditions() const;
    core::CroccoAmr::Config solverConfig(bool amrEnabled) const;

private:
    amr::Geometry geom_;
    std::shared_ptr<const mesh::Mapping> mapping_;
};

/// Isentropic vortex advected by a uniform stream on a fully periodic
/// domain: smooth exact solution, used for order-of-accuracy measurement.
class IsentropicVortex {
public:
    IsentropicVortex(int n, bool curvilinear = false);
    const amr::Geometry& geometry() const { return geom_; }
    std::shared_ptr<const mesh::Mapping> mapping() const { return mapping_; }
    core::GasModel gas() const;
    core::InitFunct initialCondition() const;
    /// Exact conserved state at (x, y, z) after time t (periodic wrap).
    std::array<Real, core::NCONS> exact(Real x, Real y, Real z, Real t) const;
    core::CroccoAmr::Config solverConfig() const;

    static constexpr Real domainLen = 10.0;
    static constexpr Real uInf = 1.0, vInf = 0.5;

private:
    amr::Geometry geom_;
    std::shared_ptr<const mesh::Mapping> mapping_;
};

/// Taylor-Green vortex: triply periodic viscous decay problem exercising
/// the Viscous kernel; kinetic energy must decay monotonically after
/// transition onset at these resolutions.
class TaylorGreen {
public:
    TaylorGreen(int n, Real reynolds = 100.0);
    const amr::Geometry& geometry() const { return geom_; }
    std::shared_ptr<const mesh::Mapping> mapping() const { return mapping_; }
    core::GasModel gas() const;
    core::InitFunct initialCondition() const;
    core::CroccoAmr::Config solverConfig() const;

    /// Volume-integrated kinetic energy of the current solution.
    static Real kineticEnergy(const core::CroccoAmr& solver);

private:
    amr::Geometry geom_;
    std::shared_ptr<const mesh::Mapping> mapping_;
    Real reynolds_;
};

} // namespace crocco::problems
