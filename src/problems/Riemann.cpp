#include "problems/Riemann.hpp"

#include <cassert>
#include <cmath>

namespace crocco::problems {

namespace {

/// f_K(p) and its derivative for the pressure iteration (Toro §4.3).
void pressureFunction(Real p, const RiemannState& s, Real gamma, Real a,
                      Real& f, Real& fd) {
    if (p > s.p) { // shock
        const Real A = 2.0 / ((gamma + 1.0) * s.rho);
        const Real B = (gamma - 1.0) / (gamma + 1.0) * s.p;
        const Real q = std::sqrt(A / (p + B));
        f = (p - s.p) * q;
        fd = q * (1.0 - 0.5 * (p - s.p) / (p + B));
    } else { // rarefaction
        const Real pr = p / s.p;
        f = 2.0 * a / (gamma - 1.0) *
            (std::pow(pr, (gamma - 1.0) / (2.0 * gamma)) - 1.0);
        fd = std::pow(pr, -(gamma + 1.0) / (2.0 * gamma)) / (s.rho * a);
    }
}

} // namespace

RiemannState exactRiemann(const RiemannState& L, const RiemannState& R,
                          Real gamma, Real xi) {
    const Real aL = std::sqrt(gamma * L.p / L.rho);
    const Real aR = std::sqrt(gamma * R.p / R.rho);

    // Newton iteration for the star-region pressure.
    Real p = std::max(1e-8, 0.5 * (L.p + R.p));
    for (int it = 0; it < 60; ++it) {
        Real fL, fdL, fR, fdR;
        pressureFunction(p, L, gamma, aL, fL, fdL);
        pressureFunction(p, R, gamma, aR, fR, fdR);
        const Real g = fL + fR + (R.u - L.u);
        const Real dp = g / (fdL + fdR);
        p = std::max(1e-10, p - dp);
        if (std::abs(dp) < 1e-12 * p) break;
    }
    Real fL, fdL, fR, fdR;
    pressureFunction(p, L, gamma, aL, fL, fdL);
    pressureFunction(p, R, gamma, aR, fR, fdR);
    const Real ustar = 0.5 * (L.u + R.u) + 0.5 * (fR - fL);

    // Sample at speed xi (Toro §4.5).
    const Real g1 = (gamma - 1.0) / (gamma + 1.0);
    if (xi < ustar) { // left of contact
        if (p > L.p) { // left shock
            const Real sL = L.u - aL * std::sqrt((gamma + 1.0) / (2 * gamma) * p / L.p +
                                                 (gamma - 1.0) / (2 * gamma));
            if (xi < sL) return L;
            const Real rho = L.rho * ((p / L.p + g1) / (g1 * p / L.p + 1.0));
            return {rho, ustar, p};
        }
        // left rarefaction
        const Real aStar = aL * std::pow(p / L.p, (gamma - 1.0) / (2 * gamma));
        if (xi < L.u - aL) return L;
        if (xi > ustar - aStar) {
            const Real rho = L.rho * std::pow(p / L.p, 1.0 / gamma);
            return {rho, ustar, p};
        }
        const Real u = 2.0 / (gamma + 1.0) * (aL + 0.5 * (gamma - 1.0) * L.u + xi);
        const Real a = 2.0 / (gamma + 1.0) * (aL + 0.5 * (gamma - 1.0) * (L.u - xi));
        const Real rho = L.rho * std::pow(a / aL, 2.0 / (gamma - 1.0));
        return {rho, u, L.p * std::pow(a / aL, 2.0 * gamma / (gamma - 1.0))};
    }
    // right of contact (mirror)
    if (p > R.p) { // right shock
        const Real sR = R.u + aR * std::sqrt((gamma + 1.0) / (2 * gamma) * p / R.p +
                                             (gamma - 1.0) / (2 * gamma));
        if (xi > sR) return R;
        const Real rho = R.rho * ((p / R.p + g1) / (g1 * p / R.p + 1.0));
        return {rho, ustar, p};
    }
    const Real aStar = aR * std::pow(p / R.p, (gamma - 1.0) / (2 * gamma));
    if (xi > R.u + aR) return R;
    if (xi < ustar + aStar) {
        const Real rho = R.rho * std::pow(p / R.p, 1.0 / gamma);
        return {rho, ustar, p};
    }
    const Real u = 2.0 / (gamma + 1.0) * (-aR + 0.5 * (gamma - 1.0) * R.u + xi);
    const Real a = 2.0 / (gamma + 1.0) * (aR - 0.5 * (gamma - 1.0) * (R.u - xi));
    const Real rho = R.rho * std::pow(a / aR, 2.0 / (gamma - 1.0));
    return {rho, u, R.p * std::pow(a / aR, 2.0 * gamma / (gamma - 1.0))};
}

} // namespace crocco::problems
