#pragma once

#include "core/CroccoAmr.hpp"

namespace crocco::problems {

using amr::Real;

/// The double Mach reflection problem of Woodward & Colella [1984] — the
/// paper's test case (§V-B): an unsteady planar Mach 10 shock incident on a
/// 30-degree inviscid compression ramp, solved in 3-D on (optionally)
/// general curvilinear coordinates, periodic in the spanwise direction.
///
/// The standard computational-plane formulation is used: the ramp is
/// unfolded onto a flat lower wall starting at x = 1/6, with the incident
/// shock inclined 60 degrees to it; the exact pre/post-shock states track
/// the shock along the top boundary.
class Dmr {
public:
    struct Options {
        int nx = 64, ny = 16, nz = 8; ///< level-0 cells; x:y extent is 4:1
        Real spanZ = 1.0;
        bool curvilinear = true;  ///< run on the interior-wavy grid
        Real waveAmplitude = 0.02;
        int maxLevel = 2;
    };

    Dmr();
    explicit Dmr(const Options& opts);

    const amr::Geometry& geometry() const { return geom_; }
    std::shared_ptr<const mesh::Mapping> mapping() const { return mapping_; }
    core::GasModel gas() const;

    /// Initial condition: post-shock state behind the 60-degree shock
    /// through (x0, 0), pre-shock quiescent gas ahead of it.
    core::InitFunct initialCondition() const;

    /// BC_Fill: inflow left, outflow right, mixed Dirichlet/slip-wall bottom
    /// (wall from x >= 1/6), time-tracked exact shock states on top,
    /// periodic spanwise.
    amr::PhysBCFunct boundaryConditions() const;

    /// Pre-configured solver for a given code version.
    core::CroccoAmr::Config solverConfig(core::CodeVersion v) const;

    static std::array<Real, core::NCONS> preShockState();
    static std::array<Real, core::NCONS> postShockState();
    /// Incident-shock x-position along the top boundary at time t.
    static Real shockXAtTop(Real t, Real yTop);
    static constexpr Real shockX0 = 1.0 / 6.0;

private:
    Options opts_;
    amr::Geometry geom_;
    std::shared_ptr<const mesh::Mapping> mapping_;
};

} // namespace crocco::problems
