#pragma once

#include "amr/Array4.hpp"

namespace crocco::problems {

using amr::Real;

/// One side of a 1-D Riemann problem (primitive variables).
struct RiemannState {
    Real rho, u, p;
};

/// Exact solution of the 1-D Riemann problem for a calorically perfect gas
/// (Toro's iterative solver): the self-similar state at speed xi = x/t.
/// Used to validate the WENO solver on the Sod shock tube.
RiemannState exactRiemann(const RiemannState& left, const RiemannState& right,
                          Real gamma, Real xi);

} // namespace crocco::problems
