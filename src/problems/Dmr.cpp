#include "problems/Dmr.hpp"

#include <cmath>

namespace crocco::problems {

using amr::Box;
using amr::Geometry;
using amr::IntVect;
using amr::MultiFab;
using core::NCONS;
using core::UEDEN;
using core::UMX;
using core::UMY;
using core::UMZ;
using core::URHO;

namespace {

constexpr Real kGamma = 1.4;
constexpr Real kSqrt3 = 1.7320508075688772;

std::array<Real, NCONS> consState(Real rho, Real u, Real v, Real w, Real p) {
    return {rho, rho * u, rho * v, rho * w,
            p / (kGamma - 1.0) + 0.5 * rho * (u * u + v * v + w * w)};
}

} // namespace

std::array<Real, NCONS> Dmr::preShockState() {
    // Quiescent gas ahead of the shock: rho = 1.4, p = 1 (so a = 1).
    return consState(1.4, 0.0, 0.0, 0.0, 1.0);
}

std::array<Real, NCONS> Dmr::postShockState() {
    // Exact Rankine-Hugoniot state behind a Mach 10 shock inclined 60
    // degrees to the wall (Woodward & Colella 1984).
    const Real speed = 8.25;
    return consState(8.0, speed * kSqrt3 / 2.0, -speed * 0.5, 0.0, 116.5);
}

Real Dmr::shockXAtTop(Real t, Real yTop) {
    // The shock travels at Mach 10 along its normal; its intersection with
    // the horizontal line y = yTop moves at 20/sqrt(3).
    return shockX0 + (yTop + 20.0 * t) / kSqrt3;
}

Dmr::Dmr() : Dmr(Options{}) {}

Dmr::Dmr(const Options& opts) : opts_(opts) {
    const Box domain(IntVect::zero(), IntVect{opts.nx - 1, opts.ny - 1, opts.nz - 1});
    amr::Periodicity per;
    per.periodic[2] = true; // spanwise
    geom_ = Geometry(domain, {0, 0, 0}, {1, 1, 1}, per);
    const std::array<Real, 3> lo{0.0, 0.0, 0.0};
    const std::array<Real, 3> hi{4.0, 1.0, opts.spanZ};
    if (opts.curvilinear) {
        mapping_ = std::make_shared<mesh::InteriorWavyMapping>(lo, hi,
                                                               opts.waveAmplitude);
    } else {
        mapping_ = std::make_shared<mesh::UniformMapping>(lo, hi);
    }
}

core::GasModel Dmr::gas() const {
    core::GasModel g;
    g.gamma = kGamma;
    g.muRef = 0.0; // inviscid
    return g;
}

core::InitFunct Dmr::initialCondition() const {
    return [](Real x, Real y, Real /*z*/) {
        // Post-shock to the left of the 60-degree shock through (x0, 0).
        return (x < shockX0 + y / kSqrt3) ? postShockState() : preShockState();
    };
}

amr::PhysBCFunct Dmr::boundaryConditions() const {
    auto mapping = mapping_;
    return [mapping](MultiFab& mf, const Geometry& geom, Real time) {
        const Box& domain = geom.domain();
        const auto post = postShockState();
        const auto pre = preShockState();
        // Physical x of a (possibly ghost) cell, from the analytic mapping
        // in the BC functor (scratch MultiFabs need not carry coordinates).
        auto physX = [&](int i, int j, int k) {
            const Real xi = geom.cellCenter(i, 0);
            const Real eta = geom.cellCenter(j, 1);
            Real zeta = geom.cellCenter(k, 2);
            zeta -= std::floor(zeta); // spanwise periodic wrap
            return mapping->toPhysical(xi, eta, zeta)[0];
        };
        for (int f = 0; f < mf.numFabs(); ++f) {
            auto a = mf.array(f);
            // Mirror/edge sources read through a const view; the sweep
            // regions (core::bcSweepRegion) clamp each x sweep away from the
            // y ghost rows, whose corner cells belong to the later y sweeps
            // — so every source read here is already filled, and the final
            // ghost values are bitwise identical to the unclamped fill.
            const auto src = mf.const_array(f);
            const Box grown = mf.grownBox(f);

            // x-low: supersonic inflow at the post-shock state.
            amr::forEachCell(core::bcSweepRegion(grown, domain, 0, 0, geom),
                             [&](int i, int j, int k) {
                                 for (int n = 0; n < NCONS; ++n)
                                     a(i, j, k, n) = post[static_cast<std::size_t>(n)];
                             });
            // x-high: supersonic outflow (zero-gradient).
            amr::forEachCell(core::bcSweepRegion(grown, domain, 0, 1, geom),
                             [&](int i, int j, int k) {
                                 for (int n = 0; n < NCONS; ++n)
                                     a(i, j, k, n) = src(domain.bigEnd(0), j, k, n);
                             });
            // y-low: post-shock inflow before the ramp foot (x < 1/6),
            // inviscid reflecting wall after it.
            amr::forEachCell(
                core::bcSweepRegion(grown, domain, 1, 0, geom),
                [&](int i, int j, int k) {
                    if (physX(i, j, k) < shockX0) {
                        for (int n = 0; n < NCONS; ++n)
                            a(i, j, k, n) = post[static_cast<std::size_t>(n)];
                    } else {
                        const int jm = 2 * domain.smallEnd(1) - 1 - j; // mirror
                        for (int n = 0; n < NCONS; ++n)
                            a(i, j, k, n) = src(i, jm, k, n);
                        a(i, j, k, UMY) = -src(i, jm, k, UMY);
                    }
                });
            // y-high: exact states tracking the moving incident shock.
            amr::forEachCell(
                core::bcSweepRegion(grown, domain, 1, 1, geom),
                [&](int i, int j, int k) {
                    const auto& s =
                        physX(i, j, k) < shockXAtTop(time, 1.0) ? post : pre;
                    for (int n = 0; n < NCONS; ++n)
                        a(i, j, k, n) = s[static_cast<std::size_t>(n)];
                });
            // z: periodic, handled by FillBoundary.
        }
    };
}

core::CroccoAmr::Config Dmr::solverConfig(core::CodeVersion v) const {
    auto cfg = core::CroccoAmr::Config::forVersion(v);
    if (cfg.amrInfo.maxLevel > 0) cfg.amrInfo.maxLevel = opts_.maxLevel;
    cfg.amrInfo.blockingFactor = 8;
    cfg.amrInfo.maxGridSize = 32;
    cfg.gas = gas();
    cfg.cfl = 0.5;
    cfg.regridFreq = 5;
    cfg.tagging = {core::TagCriterion::DensityGradient, 0.3};
    return cfg;
}

} // namespace crocco::problems
