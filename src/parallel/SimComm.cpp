#include "parallel/SimComm.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace crocco::parallel {

void CommLog::record(Message m) {
    if (enabled_) messages_.push_back(std::move(m));
}

std::size_t CommLog::count(MessageKind k) const {
    return static_cast<std::size_t>(
        std::count_if(messages_.begin(), messages_.end(),
                      [k](const Message& m) { return m.kind == k; }));
}

std::int64_t CommLog::totalBytes() const {
    std::int64_t b = 0;
    for (const Message& m : messages_) b += m.bytes;
    return b;
}

std::int64_t CommLog::totalBytes(MessageKind k) const {
    std::int64_t b = 0;
    for (const Message& m : messages_)
        if (m.kind == k) b += m.bytes;
    return b;
}

std::vector<std::int64_t> CommLog::bytesPerRank(int nranks) const {
    std::vector<std::int64_t> per(nranks, 0);
    for (const Message& m : messages_) {
        assert(m.src < nranks && m.dst < nranks);
        per[m.src] += m.bytes;
        per[m.dst] += m.bytes;
    }
    return per;
}

SimComm::SimComm(int nranks) : nranks_(nranks) { assert(nranks >= 1); }

void SimComm::recordP2P(int src, int dst, std::int64_t bytes, const std::string& tag) {
    if (src == dst) return; // on-rank copies never hit the network
    recordMessage(src, dst, bytes, MessageKind::PointToPoint, tag);
}

void SimComm::recordMessage(int src, int dst, std::int64_t bytes, MessageKind kind,
                            const std::string& tag) {
    assert(src >= 0 && src < nranks_ && dst >= 0 && dst < nranks_);
    log_.record(Message{src, dst, bytes, kind, tag});
}

namespace {
// A reduction over P ranks moves one value up and down a binomial tree:
// log2(P) rounds, each rank sending one payload per round it participates
// in. We log it as (P - 1) tree-edge messages, matching MPI_Allreduce's
// minimal traffic.
void logReduction(CommLog& log, int nranks, const std::string& tag,
                  std::int64_t payloadBytes) {
    for (int stride = 1; stride < nranks; stride *= 2) {
        for (int r = 0; r + stride < nranks; r += 2 * stride) {
            log.record(Message{r + stride, r, payloadBytes,
                               MessageKind::Reduction, tag});
        }
    }
}
} // namespace

namespace {
// A reduction collects exactly one contribution per rank; anything else is
// the in-process analogue of an MPI rank-count mismatch. With only an
// assert this was UB in release builds (*min_element of an empty range) or
// silently wrong answers.
void checkPerRank(const std::vector<double>& perRank, int nranks,
                  const char* fn, const std::string& tag) {
    if (static_cast<int>(perRank.size()) != nranks) {
        throw std::invalid_argument(
            std::string("SimComm::") + fn + " ('" + tag + "'): perRank has " +
            std::to_string(perRank.size()) + " entries but the communicator " +
            "has " + std::to_string(nranks) + " ranks");
    }
}
} // namespace

double SimComm::reduceRealMin(const std::vector<double>& perRank, const std::string& tag) {
    checkPerRank(perRank, nranks_, "reduceRealMin", tag);
    logReduction(log_, nranks_, tag, static_cast<std::int64_t>(sizeof(double)));
    return *std::min_element(perRank.begin(), perRank.end());
}

double SimComm::reduceRealMax(const std::vector<double>& perRank, const std::string& tag) {
    checkPerRank(perRank, nranks_, "reduceRealMax", tag);
    logReduction(log_, nranks_, tag, static_cast<std::int64_t>(sizeof(double)));
    return *std::max_element(perRank.begin(), perRank.end());
}

double SimComm::reduceRealSum(const std::vector<double>& perRank, const std::string& tag) {
    checkPerRank(perRank, nranks_, "reduceRealSum", tag);
    logReduction(log_, nranks_, tag, static_cast<std::int64_t>(sizeof(double)));
    return std::accumulate(perRank.begin(), perRank.end(), 0.0);
}

namespace {
std::string sendKey(int src, int dst, const std::string& tag) {
    return std::to_string(src) + ">" + std::to_string(dst) + ":" + tag;
}
} // namespace

SimComm::Request SimComm::isend(int src, int dst, std::int64_t bytes,
                                MessageKind kind, const std::string& tag) {
    assert(src >= 0 && src < nranks_ && dst >= 0 && dst < nranks_);
    const Request id = nextRequest_++;
    pending_.push_back(PendingOp{id, false, Message{src, dst, bytes, kind, tag}});
    ++sendBalance_[sendKey(src, dst, tag)];
    return id;
}

SimComm::Request SimComm::irecv(int src, int dst, const std::string& tag) {
    assert(src >= 0 && src < nranks_ && dst >= 0 && dst < nranks_);
    const Request id = nextRequest_++;
    pending_.push_back(PendingOp{id, true, Message{src, dst, 0,
                                                   MessageKind::PointToPoint, tag}});
    return id;
}

void SimComm::waitall(const std::vector<Request>& requests) {
    for (const Request r : requests) {
        const auto it = std::find_if(pending_.begin(), pending_.end(),
                                     [r](const PendingOp& p) { return p.id == r; });
        if (it == pending_.end()) {
            throw std::logic_error("SimComm::waitall: request " + std::to_string(r) +
                                   " is unknown or already completed");
        }
        if (it->isRecv) {
            auto bal = sendBalance_.find(sendKey(it->msg.src, it->msg.dst, it->msg.tag));
            if (bal == sendBalance_.end() || bal->second <= 0) {
                throw std::logic_error(
                    "SimComm::waitall: irecv (" + std::to_string(it->msg.src) + " -> " +
                    std::to_string(it->msg.dst) + ", '" + it->msg.tag +
                    "') has no matching isend — a real MPI_Waitall would hang here");
            }
            --bal->second;
        } else {
            log_.record(it->msg);
        }
        pending_.erase(it);
    }
}

} // namespace crocco::parallel
