#include "parallel/SimComm.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace crocco::parallel {

void CommLog::record(Message m) {
    if (enabled_) messages_.push_back(std::move(m));
}

std::size_t CommLog::count(MessageKind k) const {
    return static_cast<std::size_t>(
        std::count_if(messages_.begin(), messages_.end(),
                      [k](const Message& m) { return m.kind == k; }));
}

std::int64_t CommLog::totalBytes() const {
    std::int64_t b = 0;
    for (const Message& m : messages_) b += m.bytes;
    return b;
}

std::int64_t CommLog::totalBytes(MessageKind k) const {
    std::int64_t b = 0;
    for (const Message& m : messages_)
        if (m.kind == k) b += m.bytes;
    return b;
}

std::vector<std::int64_t> CommLog::bytesPerRank(int nranks) const {
    std::vector<std::int64_t> per(nranks, 0);
    for (const Message& m : messages_) {
        assert(m.src < nranks && m.dst < nranks);
        per[m.src] += m.bytes;
        per[m.dst] += m.bytes;
    }
    return per;
}

namespace {
bool endsWith(const std::string& s, const char* suffix) {
    const std::size_t n = std::char_traits<char>::length(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}
} // namespace

CommLog::Summary CommLog::summarize(std::size_t fromIndex) const {
    Summary s;
    for (std::size_t i = fromIndex; i < messages_.size(); ++i) {
        const Message& m = messages_[i];
        ++s.messages;
        s.bytes += m.bytes;
        switch (m.kind) {
        case MessageKind::PointToPoint: ++s.p2p; break;
        case MessageKind::ParallelCopy: ++s.parallelCopy; break;
        case MessageKind::Reduction: ++s.reductions; break;
        }
        if (m.tag.find("/rtx") != std::string::npos) ++s.retransmits;
        if (endsWith(m.tag, "/nack")) ++s.nacks;
        if (endsWith(m.tag, "/dup")) ++s.duplicates;
    }
    return s;
}

std::string CommLog::formatSummary(const Summary& s) {
    std::ostringstream os;
    os << "comm: msgs=" << s.messages << " bytes=" << s.bytes
       << " p2p=" << s.p2p << " pc=" << s.parallelCopy
       << " red=" << s.reductions << " rtx=" << s.retransmits
       << " nack=" << s.nacks << " dup=" << s.duplicates;
    return os.str();
}

SimComm::SimComm(int nranks)
    : nranks_(nranks), alive_(static_cast<std::size_t>(nranks), true) {
    assert(nranks >= 1);
}

void SimComm::checkAlive(int rank, const char* what) const {
    if (rank >= 0 && rank < nranks_ && !alive_[rank]) {
        throw RankFailure(rank, std::string("SimComm::") + what + ": rank " +
                                    std::to_string(rank) +
                                    " is dead (process failure detected)");
    }
}

void SimComm::recordP2P(int src, int dst, std::int64_t bytes, const std::string& tag) {
    if (src == dst) return; // on-rank copies never hit the network
    recordMessage(src, dst, bytes, MessageKind::PointToPoint, tag);
}

void SimComm::recordMessage(int src, int dst, std::int64_t bytes, MessageKind kind,
                            const std::string& tag) {
    assert(src >= 0 && src < nranks_ && dst >= 0 && dst < nranks_);
    if (anyDead_) {
        checkAlive(src, "recordMessage");
        checkAlive(dst, "recordMessage");
    }
    log_.record(Message{src, dst, bytes, kind, tag});
}

namespace {
// A reduction over P ranks moves one value up and down a binomial tree:
// log2(P) rounds, each rank sending one payload per round it participates
// in. We log it as (P - 1) tree-edge messages, matching MPI_Allreduce's
// minimal traffic.
void logReduction(CommLog& log, int nranks, const std::string& tag,
                  std::int64_t payloadBytes) {
    for (int stride = 1; stride < nranks; stride *= 2) {
        for (int r = 0; r + stride < nranks; r += 2 * stride) {
            log.record(Message{r + stride, r, payloadBytes,
                               MessageKind::Reduction, tag});
        }
    }
}
} // namespace

namespace {
// A reduction collects exactly one contribution per rank; anything else is
// the in-process analogue of an MPI rank-count mismatch. With only an
// assert this was UB in release builds (*min_element of an empty range) or
// silently wrong answers.
void checkPerRank(const std::vector<double>& perRank, int nranks,
                  const char* fn, const std::string& tag) {
    if (static_cast<int>(perRank.size()) != nranks) {
        throw std::invalid_argument(
            std::string("SimComm::") + fn + " ('" + tag + "'): perRank has " +
            std::to_string(perRank.size()) + " entries but the communicator " +
            "has " + std::to_string(nranks) + " ranks");
    }
}
} // namespace

double SimComm::reduceRealMin(const std::vector<double>& perRank, const std::string& tag) {
    checkPerRank(perRank, nranks_, "reduceRealMin", tag);
    // A collective touches every rank; a dead one hangs it (ULFM raises
    // MPI_ERR_PROC_FAILED). Detect before any message is logged.
    if (anyDead_) {
        for (int r = 0; r < nranks_; ++r) checkAlive(r, "reduceRealMin");
    }
    logReduction(log_, nranks_, tag, static_cast<std::int64_t>(sizeof(double)));
    return *std::min_element(perRank.begin(), perRank.end());
}

double SimComm::reduceRealMax(const std::vector<double>& perRank, const std::string& tag) {
    checkPerRank(perRank, nranks_, "reduceRealMax", tag);
    if (anyDead_) {
        for (int r = 0; r < nranks_; ++r) checkAlive(r, "reduceRealMax");
    }
    logReduction(log_, nranks_, tag, static_cast<std::int64_t>(sizeof(double)));
    return *std::max_element(perRank.begin(), perRank.end());
}

double SimComm::reduceRealSum(const std::vector<double>& perRank, const std::string& tag) {
    checkPerRank(perRank, nranks_, "reduceRealSum", tag);
    if (anyDead_) {
        for (int r = 0; r < nranks_; ++r) checkAlive(r, "reduceRealSum");
    }
    logReduction(log_, nranks_, tag, static_cast<std::int64_t>(sizeof(double)));
    return std::accumulate(perRank.begin(), perRank.end(), 0.0);
}

namespace {
std::string sendKey(int src, int dst, const std::string& tag) {
    return std::to_string(src) + ">" + std::to_string(dst) + ":" + tag;
}

const char* kindName(MessageKind k) {
    switch (k) {
        case MessageKind::PointToPoint: return "P2P";
        case MessageKind::ParallelCopy: return "ParallelCopy";
        case MessageKind::Reduction: return "Reduction";
    }
    return "?";
}
} // namespace

SimComm::Request SimComm::isend(int src, int dst, std::int64_t bytes,
                                MessageKind kind, const std::string& tag,
                                std::uint32_t payloadCrc) {
    assert(src >= 0 && src < nranks_ && dst >= 0 && dst < nranks_);
    if (anyDead_) {
        checkAlive(src, "isend");
        checkAlive(dst, "isend");
    }
    const Request id = nextRequest_++;
    pending_.push_back(
        PendingOp{id, false, Message{src, dst, bytes, kind, tag, payloadCrc}});
    ++sendBalance_[sendKey(src, dst, tag)];
    return id;
}

SimComm::Request SimComm::irecv(int src, int dst, const std::string& tag) {
    assert(src >= 0 && src < nranks_ && dst >= 0 && dst < nranks_);
    if (anyDead_) {
        checkAlive(src, "irecv");
        checkAlive(dst, "irecv");
    }
    const Request id = nextRequest_++;
    pending_.push_back(PendingOp{id, true, Message{src, dst, 0,
                                                   MessageKind::PointToPoint, tag}});
    return id;
}

std::string SimComm::pendingDump() const {
    std::ostringstream os;
    os << pending_.size() << " pending op(s):";
    for (const PendingOp& p : pending_) {
        os << "\n  [" << p.id << "] " << (p.isRecv ? "irecv" : "isend") << " "
           << p.msg.src << " -> " << p.msg.dst << " '" << p.msg.tag << "' ("
           << kindName(p.msg.kind) << ", " << p.msg.bytes << " B)";
    }
    return os.str();
}

void SimComm::waitall(const std::vector<Request>& requests) {
    for (const Request r : requests) {
        const auto it = std::find_if(pending_.begin(), pending_.end(),
                                     [r](const PendingOp& p) { return p.id == r; });
        if (it == pending_.end()) {
            throw std::logic_error("SimComm::waitall: request " + std::to_string(r) +
                                   " is unknown or already completed");
        }
        // MPI_Waitall is where a run first blocks on a dead peer; surface
        // the failure here so the recovery path (shrink + redistribute)
        // takes over instead of an infinite wait.
        if (anyDead_) {
            checkAlive(it->msg.src, "waitall");
            checkAlive(it->msg.dst, "waitall");
        }
        if (it->isRecv) {
            auto bal = sendBalance_.find(sendKey(it->msg.src, it->msg.dst, it->msg.tag));
            if (bal == sendBalance_.end() || bal->second <= 0) {
                throw std::logic_error(
                    "SimComm::waitall: irecv (" + std::to_string(it->msg.src) + " -> " +
                    std::to_string(it->msg.dst) + ", '" + it->msg.tag +
                    "') has no matching isend — a real MPI_Waitall would hang here"
                    " (simulated receive timed out after " +
                    std::to_string(timeoutSeconds_) + " s, deck key comm.timeout); " +
                    pendingDump());
            }
            --bal->second;
        } else {
            log_.record(it->msg);
        }
        pending_.erase(it);
    }
}

// --- Fault-tolerant exchange -------------------------------------------

void SimComm::setTimeout(double seconds) {
    if (seconds <= 0.0)
        throw std::invalid_argument("SimComm::setTimeout: timeout must be > 0");
    timeoutSeconds_ = seconds;
}

void SimComm::setMaxRetransmits(int n) {
    if (n < 1)
        throw std::invalid_argument("SimComm::setMaxRetransmits: need >= 1");
    maxRetransmits_ = n;
}

void SimComm::recoverTransfer(const Transfer& t, std::uint32_t wantCrc,
                              bool delivered) {
    // Bounded retransmit with exponential backoff: attempt k waits
    // timeout * 2^k modeled seconds before the receiver NACKs/again
    // requests the payload. Retransmits run clean unless the injector is
    // in persistent (broken-link) mode, in which case the same decision
    // stream applies and an unlucky link exhausts the budget.
    double backoff = timeoutSeconds_;
    for (int attempt = 1; attempt <= maxRetransmits_; ++attempt) {
        fstats_.modeledDelaySeconds += backoff;
        backoff *= 2.0;
        ++fstats_.retransmits;
        log_.record(Message{t.src, t.dst, t.bytes, t.kind,
                            t.tag + "/rtx" + std::to_string(attempt), wantCrc});
        bool dropped = false;
        if (faults_ && faults_->persistent()) {
            if (auto f = faults_->decide(t.src, t.dst, t.bytes, t.tag)) {
                switch (*f) {
                    case MessageFault::Drop:
                    case MessageFault::Delay:
                        ++fstats_.timeouts;
                        dropped = true;
                        break;
                    case MessageFault::Corrupt:
                        t.deliver();
                        t.scramble(faults_->corruptionWord());
                        delivered = true;
                        break;
                    case MessageFault::Duplicate:
                        // second copy discarded by sequence number
                        t.deliver();
                        ++fstats_.duplicateDiscards;
                        delivered = true;
                        break;
                }
            } else {
                t.deliver();
                delivered = true;
            }
        } else {
            t.deliver();
            delivered = true;
        }
        if (!dropped && delivered && t.deliveredCrc() == wantCrc) {
            ++fstats_.delivered;
            return;
        }
        if (delivered) {
            ++fstats_.crcFailures;
            ++fstats_.nacks;
            log_.record(Message{t.dst, t.src, 8, t.kind, t.tag + "/nack",
                                wantCrc});
        }
    }
    throw std::runtime_error(
        "SimComm: transfer " + std::to_string(t.src) + " -> " +
        std::to_string(t.dst) + " '" + t.tag + "' (" +
        std::to_string(t.bytes) + " B) undeliverable after " +
        std::to_string(maxRetransmits_) +
        " retransmits — link is down (comm.max_retransmits)");
}

void SimComm::sendVerified(const Transfer& t) {
    assert(t.deliver && t.payloadCrc && t.deliveredCrc && t.scramble);
    if (t.src == t.dst) { // on-rank copy: no network, nothing to verify
        t.deliver();
        return;
    }
    if (anyDead_) {
        checkAlive(t.src, "sendVerified");
        checkAlive(t.dst, "sendVerified");
    }
    ++fstats_.verified;
    const std::uint32_t want = t.payloadCrc();
    // The original transmission is always recorded — the wire saw it even
    // if the payload is then lost or damaged in flight.
    log_.record(Message{t.src, t.dst, t.bytes, t.kind, t.tag, want});
    std::optional<MessageFault> fault;
    if (faults_) fault = faults_->decide(t.src, t.dst, t.bytes, t.tag);
    if (!fault) {
        t.deliver();
        if (t.deliveredCrc() == want) {
            ++fstats_.delivered;
            return;
        }
        // No injected fault but the CRC disagrees: real in-flight damage
        // (this is what comm.verify exists to catch). NACK and retransmit.
        ++fstats_.crcFailures;
        ++fstats_.nacks;
        log_.record(Message{t.dst, t.src, 8, t.kind, t.tag + "/nack", want});
        recoverTransfer(t, want, true);
        return;
    }
    switch (*fault) {
        case MessageFault::Drop:
            // Payload never arrives; the receive timeout fires and the
            // retransmit loop takes over.
            ++fstats_.dropped;
            ++fstats_.timeouts;
            recoverTransfer(t, want, false);
            return;
        case MessageFault::Delay:
            // Payload arrives after the timeout fired: the receiver has
            // already NACK'd, the retransmit wins, and the late original
            // is discarded by its stale sequence number.
            ++fstats_.delayed;
            ++fstats_.timeouts;
            recoverTransfer(t, want, false);
            t.deliver(); // late original lands afterwards...
            ++fstats_.duplicateDiscards; // ...and is discarded (idempotent)
            return;
        case MessageFault::Duplicate:
            // Link-level retry delivered two copies; sequence numbers keep
            // the first and discard the second. Both crossed the wire.
            ++fstats_.duplicated;
            t.deliver();
            log_.record(Message{t.src, t.dst, t.bytes, t.kind,
                                t.tag + "/dup", want});
            ++fstats_.duplicateDiscards;
            if (t.deliveredCrc() == want) {
                ++fstats_.delivered;
                return;
            }
            ++fstats_.crcFailures;
            ++fstats_.nacks;
            log_.record(Message{t.dst, t.src, 8, t.kind, t.tag + "/nack", want});
            recoverTransfer(t, want, true);
            return;
        case MessageFault::Corrupt:
            // Payload arrives with a flipped bit; CRC32 catches it, the
            // receiver NACKs, and the sender retransmits.
            ++fstats_.corrupted;
            t.deliver();
            t.scramble(faults_->corruptionWord());
            if (t.deliveredCrc() == want) {
                // scramble hit a bit outside the checksummed region (never
                // happens for full-payload CRC, but stay safe)
                ++fstats_.delivered;
                return;
            }
            ++fstats_.crcFailures;
            ++fstats_.nacks;
            log_.record(Message{t.dst, t.src, 8, t.kind, t.tag + "/nack", want});
            recoverTransfer(t, want, true);
            return;
    }
}

void SimComm::verifyDelivered(const Transfer& t) {
    assert(t.deliver && t.payloadCrc && t.deliveredCrc && t.scramble);
    if (t.src == t.dst) return;
    if (anyDead_) {
        checkAlive(t.src, "verifyDelivered");
        checkAlive(t.dst, "verifyDelivered");
    }
    ++fstats_.verified;
    const std::uint32_t want = t.payloadCrc();
    std::optional<MessageFault> fault;
    if (faults_) fault = faults_->decide(t.src, t.dst, t.bytes, t.tag);
    if (fault) {
        switch (*fault) {
            case MessageFault::Corrupt:
                ++fstats_.corrupted;
                t.scramble(faults_->corruptionWord());
                break;
            case MessageFault::Duplicate:
                // Second copy of an already-delivered payload: discard.
                ++fstats_.duplicated;
                log_.record(Message{t.src, t.dst, t.bytes, t.kind,
                                    t.tag + "/dup", want});
                ++fstats_.duplicateDiscards;
                break;
            case MessageFault::Drop:
            case MessageFault::Delay:
                // The payload is already present by the wait (the stream
                // drain delivered it); late arrival shows up as one extra
                // timeout of detection latency, then the local copy wins.
                ++fstats_.delayed;
                ++fstats_.timeouts;
                fstats_.modeledDelaySeconds += timeoutSeconds_;
                break;
        }
    }
    if (t.deliveredCrc() == want) {
        ++fstats_.delivered;
        return;
    }
    ++fstats_.crcFailures;
    ++fstats_.nacks;
    log_.record(Message{t.dst, t.src, 8, t.kind, t.tag + "/nack", want});
    recoverTransfer(t, want, true);
}

// --- Rank failure and recovery -----------------------------------------

void SimComm::killRank(int rank) {
    if (rank < 0 || rank >= nranks_)
        throw std::invalid_argument("SimComm::killRank: rank " +
                                    std::to_string(rank) + " out of range");
    if (!alive_[rank])
        throw std::invalid_argument("SimComm::killRank: rank " +
                                    std::to_string(rank) + " already dead");
    if (aliveCount() <= 1)
        throw std::logic_error("SimComm::killRank: no survivor would remain");
    alive_[rank] = false;
    anyDead_ = true;
}

bool SimComm::rankAlive(int rank) const {
    assert(rank >= 0 && rank < nranks_);
    return alive_[rank];
}

int SimComm::aliveCount() const {
    return static_cast<int>(std::count(alive_.begin(), alive_.end(), true));
}

std::vector<int> SimComm::shrink() {
    std::vector<int> map(static_cast<std::size_t>(nranks_), -1);
    int next = 0;
    for (int r = 0; r < nranks_; ++r) {
        if (alive_[r]) map[r] = next++;
    }
    nranks_ = next;
    alive_.assign(static_cast<std::size_t>(nranks_), true);
    anyDead_ = false;
    // The old communicator's epoch ends with the shrink: every pending
    // nonblocking op and send/recv balance belonged to it and is revoked
    // (ULFM revokes the communicator before shrinking it).
    pending_.clear();
    sendBalance_.clear();
    return map;
}

} // namespace crocco::parallel
