#include "parallel/CommFaults.hpp"

#include <stdexcept>

namespace crocco::parallel {

CommFaults::CommFaults(std::uint64_t seed) : rng_(seed) {}

void CommFaults::setRates(const Rates& r) {
    auto check = [](double p, const char* name) {
        if (p < 0.0 || p > 1.0)
            throw std::invalid_argument(std::string("CommFaults rate '") +
                                        name + "' must be in [0, 1]");
    };
    check(r.drop, "drop");
    check(r.duplicate, "duplicate");
    check(r.delay, "delay");
    check(r.corrupt, "corrupt");
    if (r.drop + r.duplicate + r.delay + r.corrupt > 1.0)
        throw std::invalid_argument("CommFaults rates must sum to <= 1");
    rates_ = r;
    anyRate_ = r.drop + r.duplicate + r.delay + r.corrupt > 0.0;
}

void CommFaults::armMessageFault(MessageFault kind, std::int64_t nthMessage) {
    if (nthMessage < 0)
        throw std::invalid_argument("CommFaults::armMessageFault: nth < 0");
    messageArms_.push_back({kind, nthMessage, false});
}

void CommFaults::armRankDeath(int step, int rank) {
    if (step < 0 || rank < 0)
        throw std::invalid_argument("CommFaults::armRankDeath: negative step/rank");
    deathArms_.push_back({step, rank, false});
}

std::optional<int> CommFaults::takeRankDeath(int step) {
    if (!enabled_) return std::nullopt;
    for (DeathArm& a : deathArms_) {
        if (a.spent || a.step != step) continue;
        a.spent = true;
        ++stats_.rankDeaths;
        return a.rank;
    }
    return std::nullopt;
}

std::optional<MessageFault> CommFaults::decide(int /*src*/, int /*dst*/,
                                               std::int64_t /*bytes*/,
                                               const std::string& /*tag*/) {
    if (!enabled_) return std::nullopt;
    const std::int64_t n = messageCounter_++;
    ++stats_.decisions;
    auto count = [this](MessageFault k) {
        switch (k) {
            case MessageFault::Drop: ++stats_.drops; break;
            case MessageFault::Duplicate: ++stats_.duplicates; break;
            case MessageFault::Delay: ++stats_.delays; break;
            case MessageFault::Corrupt: ++stats_.corruptions; break;
        }
    };
    for (MessageArm& a : messageArms_) {
        if (a.spent || a.nth != n) continue;
        a.spent = true;
        count(a.kind);
        return a.kind;
    }
    if (!anyRate_) return std::nullopt;
    const double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng_);
    double c = rates_.drop;
    if (u < c) { count(MessageFault::Drop); return MessageFault::Drop; }
    c += rates_.duplicate;
    if (u < c) { count(MessageFault::Duplicate); return MessageFault::Duplicate; }
    c += rates_.delay;
    if (u < c) { count(MessageFault::Delay); return MessageFault::Delay; }
    c += rates_.corrupt;
    if (u < c) { count(MessageFault::Corrupt); return MessageFault::Corrupt; }
    return std::nullopt;
}

std::uint64_t CommFaults::corruptionWord() { return rng_(); }

} // namespace crocco::parallel
