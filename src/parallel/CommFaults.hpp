#pragma once

#include "resilience/FaultRng.hpp"

#include <cstdint>
#include <optional>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

namespace crocco::parallel {

/// Kinds of message-level faults the injector can apply to one in-flight
/// point-to-point transfer. These are the dominant failure modes of a
/// Summit-scale interconnect campaign: packets lost under congestion,
/// duplicated by link-level retry, delivered out of order, silently
/// bit-flipped (NIC/DRAM soft errors), and whole ranks disappearing when a
/// node dies.
enum class MessageFault {
    Drop,      ///< the payload never arrives; the receiver times out
    Duplicate, ///< the payload arrives twice; sequence numbers discard one
    Delay,     ///< the payload arrives after the receiver's timeout fired
    Corrupt,   ///< one payload bit flips in flight; CRC32 catches it
};

/// Thrown when a communication operation touches a rank that has died
/// (the in-process analogue of MPI_ERR_PROC_FAILED under ULFM). Recovery
/// is the caller's job: shrink the communicator and restore the dead
/// rank's data from a buddy checkpoint or a disk restart.
class RankFailure : public std::runtime_error {
public:
    RankFailure(int deadRank, const std::string& what)
        : std::runtime_error(what), deadRank_(deadRank) {}
    int deadRank() const { return deadRank_; }

private:
    int deadRank_;
};

/// Seeded, deterministic message-fault injector for the hardened SimComm
/// exchange path. Follows the resilience/FaultInjector conventions: faults
/// are either *armed* one-shot events (the Nth verified message, a rank
/// death at a given step) or rate-driven (a per-message probability per
/// kind), and a given (seed, schedule, message sequence) reproduces the
/// same faults every run.
///
/// The injector only decides; SimComm::sendVerified / verifyDelivered
/// apply the decision to the actual payload copy and run the
/// detect/NACK/retransmit machinery.
class CommFaults {
public:
    /// Per-message fault probabilities, in [0, 1]; applied in the fixed
    /// order drop, duplicate, delay, corrupt (cumulative thresholds).
    struct Rates {
        double drop = 0.0;
        double duplicate = 0.0;
        double delay = 0.0;
        double corrupt = 0.0;
    };

    struct Stats {
        std::int64_t decisions = 0; ///< messages consulted
        std::int64_t drops = 0;
        std::int64_t duplicates = 0;
        std::int64_t delays = 0;
        std::int64_t corruptions = 0;
        std::int64_t rankDeaths = 0;
        std::int64_t fired() const {
            return drops + duplicates + delays + corruptions + rankDeaths;
        }
    };

    explicit CommFaults(std::uint64_t seed = 0xFA17C033ull);
    /// Substream constructor: draws this injector's seed from the unified
    /// fault RNG (resilience/FaultRng), keeping its decision stream
    /// independent of the cell-fault and SDC injectors sharing the master
    /// seed. The legacy direct-seed constructor above is untouched, so the
    /// PR 6 soak digests pin byte-identical fault schedules.
    explicit CommFaults(const resilience::FaultRng& rng)
        : CommFaults(rng.seedFor(resilience::FaultRng::kCommStream)) {}

    void setRates(const Rates& r);
    const Rates& rates() const { return rates_; }

    /// Master switch: a disabled injector never faults (decide() returns
    /// nullopt without consuming randomness, so enabling mid-run does not
    /// shift the decision stream of later messages relative to a run that
    /// was enabled from the same point).
    void setEnabled(bool e) { enabled_ = e; }
    bool enabled() const { return enabled_; }

    /// Persistent mode: retransmitted payloads are faulted again through
    /// the same decision stream (models a broken link rather than a
    /// transient glitch). Default off — retransmits run clean, which is how
    /// soft errors behave and what lets every fault be recovered.
    void setPersistent(bool p) { persistent_ = p; }
    bool persistent() const { return persistent_; }

    /// Arm a one-shot fault against the Nth verified off-rank message
    /// (0-based, counted across the injector's lifetime). Precise-targeting
    /// hook for tests; rate faults still apply to other messages.
    void armMessageFault(MessageFault kind, std::int64_t nthMessage);

    /// Schedule rank `rank` to die at the start of step `step`. The solver
    /// driver polls takeRankDeath() once per step and kills the rank in the
    /// communicator; the next exchange touching it raises RankFailure.
    void armRankDeath(int step, int rank);

    /// Consume a scheduled rank death for `step`, if any.
    std::optional<int> takeRankDeath(int step);

    /// Decide the fate of one off-rank message. Consumes one uniform draw
    /// when enabled and any rate is set; armed one-shot faults take
    /// precedence over rate faults.
    std::optional<MessageFault> decide(int src, int dst, std::int64_t bytes,
                                       const std::string& tag);

    /// Pseudo-random 64-bit word used to pick which payload bit a Corrupt
    /// fault flips; deterministic continuation of the seeded stream.
    std::uint64_t corruptionWord();

    const Stats& stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

private:
    struct MessageArm {
        MessageFault kind;
        std::int64_t nth;
        bool spent;
    };
    struct DeathArm {
        int step;
        int rank;
        bool spent;
    };

    std::mt19937_64 rng_;
    Rates rates_;
    bool enabled_ = true;
    bool persistent_ = false;
    bool anyRate_ = false;
    std::int64_t messageCounter_ = 0;
    std::vector<MessageArm> messageArms_;
    std::vector<DeathArm> deathArms_;
    Stats stats_;
};

} // namespace crocco::parallel
