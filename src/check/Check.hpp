#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// CroccoCheck — opt-in correctness instrumentation (-DCROCCO_CHECK=ON).
///
/// The checkers woven through the AMR/GPU substrates all funnel their
/// verdicts through this header:
///   * Array4 / FArrayBox bounds checking          (Kind::Bounds)
///   * shadow validity-map reads of never-filled
///     or poisoned cells                           (Kind::Uninit)
///   * reads of ghost cells invalidated by a
///     later valid-region write                    (Kind::StaleGhost)
///   * ThreadPool launch-level race detection      (Kind::Race)
///   * CommCache replay re-derivation mismatches   (Kind::CommCache)
///
/// CROCCO_CHECK is a whole-build CMake option (add_compile_definitions), so
/// every translation unit of a configuration agrees on struct layouts; mixed
/// checked/unchecked objects must never be linked together. With the flag
/// off, every hook in this namespace compiles to nothing and the accessors
/// revert to the seed's unchecked inline code.
namespace crocco::check {

#ifdef CROCCO_CHECK
inline constexpr bool enabled = true;
#else
inline constexpr bool enabled = false;
#endif

enum class Kind { Bounds, Uninit, StaleGhost, Race, CommCache };

const char* kindName(Kind k);

struct Violation {
    Kind kind;
    std::string message;
};

/// What fail() does with a violation. The base mode comes from the
/// CROCCO_CHECK_MODE environment variable ("abort" — the default — or
/// "warn"); an active ScopedFailureCapture overrides either.
enum class Mode { Abort, Warn, Capture };

Mode mode();

/// Report a violation: print and std::abort() (Abort), print and continue
/// (Warn), or append to the innermost ScopedFailureCapture (Capture).
/// Callable from pool worker threads.
void fail(Kind kind, const std::string& message);

namespace detail {
struct CaptureState;
} // namespace detail

/// RAII test hook: while alive, violations are recorded instead of
/// aborting. Captures nest; violations go to the innermost scope.
class ScopedFailureCapture {
public:
    ScopedFailureCapture();
    ~ScopedFailureCapture();
    ScopedFailureCapture(const ScopedFailureCapture&) = delete;
    ScopedFailureCapture& operator=(const ScopedFailureCapture&) = delete;

    /// Snapshot of the violations captured so far (thread-safe).
    std::vector<Violation> violations() const;
    std::size_t count() const;
    std::size_t count(Kind k) const;
    void clear();

private:
    detail::CaptureState* state_;
    detail::CaptureState* prev_;
};

/// The signaling-NaN payload gpu::Arena stamps into fresh (device-modeled)
/// allocations under check builds, so any datum that escapes the validity
/// map still announces itself as NaN the first time arithmetic touches it.
double poisonValue();

/// --- CommCache replay guard -------------------------------------------
/// Checked builds re-derive the copy-descriptor list on every Nth cache
/// replay and require it byte-identical to the cached pattern, catching
/// stale-cache bugs introduced by future regrid/invalidation changes.
/// N comes from CROCCO_CHECK_COMM_SAMPLE (default 8; 0 disables).
int commGuardSampleRate();
void setCommGuardSampleRate(int n);
/// Counter tick: true when this replay should be re-derived and compared.
bool commGuardShouldVerify();

} // namespace crocco::check
