#include "check/FabShadow.hpp"

#include <atomic>
#include <sstream>

namespace crocco::check {

namespace {

std::atomic<std::uint64_t> gNextFabId{1};

// Boxes are formatted here rather than through amr's operator<< so the check
// library stays a leaf (it uses only Box's inline methods, no amr objects).
void fmtBox(std::ostream& os, const Box& b) {
    os << "[(" << b.smallEnd(0) << "," << b.smallEnd(1) << "," << b.smallEnd(2)
       << ")-(" << b.bigEnd(0) << "," << b.bigEnd(1) << "," << b.bigEnd(2)
       << ")]";
}

const char* stateName(FabShadow::State s) {
    switch (s) {
        case FabShadow::Uninit: return "never-filled";
        case FabShadow::Valid: return "valid";
        case FabShadow::Stale: return "stale";
    }
    return "?";
}

} // namespace

void FabShadow::define(const Box& alloc, const Box& valid, int ncomp,
                       State init) {
    alloc_ = alloc;
    valid_ = valid;
    npts_ = alloc.numPts();
    ncomp_ = ncomp;
    id_ = gNextFabId.fetch_add(1, std::memory_order_relaxed);
    state_.assign(static_cast<std::size_t>(npts_) * ncomp,
                  static_cast<std::uint8_t>(init));
}

void FabShadow::markAll(State s) {
    for (std::uint8_t& c : state_) c = static_cast<std::uint8_t>(s);
}

void FabShadow::markRegion(const Box& region, int comp, int numComp, State s) {
    if (state_.empty()) return;
    const Box r = region & alloc_;
    for (int n = comp; n < comp + numComp; ++n)
        amr::forEachCell(r, [&](int i, int j, int k) {
            state_[idx(i, j, k, n)] = static_cast<std::uint8_t>(s);
        });
}

void FabShadow::invalidateGhosts() {
    if (state_.empty()) return;
    for (int n = 0; n < ncomp_; ++n)
        amr::forEachCell(alloc_, [&](int i, int j, int k) {
            if (valid_.contains({i, j, k})) return;
            std::uint8_t& s = state_[idx(i, j, k, n)];
            if (s == Valid) s = Stale;
        });
}

void FabShadow::failRead(int i, int j, int k, int n, State s,
                         const std::source_location& loc) const {
    std::ostringstream os;
    os << "read of " << stateName(s) << " cell (" << i << "," << j << "," << k
       << ") comp " << n << " in fab#" << id_ << " alloc=";
    fmtBox(os, alloc_);
    os << " valid=";
    fmtBox(os, valid_);
    os << " at " << loc.file_name() << ":" << loc.line();
    fail(s == Stale ? Kind::StaleGhost : Kind::Uninit, os.str());
}

void failBounds(bool nullView, int i, int j, int k, int n, const IntVect& lo,
                const IntVect& hi, int ncomp, const FabShadow* shadow,
                const std::source_location& loc) {
    std::ostringstream os;
    if (nullView) {
        os << "access through a null Array4 view";
    } else {
        os << "index (" << i << "," << j << "," << k << ") comp " << n
           << " outside view ";
        fmtBox(os, Box(lo, hi));
        os << " x " << ncomp << " comps";
    }
    if (shadow && shadow->defined()) os << " of fab#" << shadow->id();
    os << " at " << loc.file_name() << ":" << loc.line();
    fail(Kind::Bounds, os.str());
}

} // namespace crocco::check
