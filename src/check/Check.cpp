#include "check/Check.hpp"

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace crocco::check {

const char* kindName(Kind k) {
    switch (k) {
        case Kind::Bounds: return "bounds";
        case Kind::Uninit: return "uninit";
        case Kind::StaleGhost: return "stale-ghost";
        case Kind::Race: return "race";
        case Kind::CommCache: return "comm-cache";
    }
    return "?";
}

namespace detail {
struct CaptureState {
    std::mutex m;
    std::vector<Violation> violations;
};
} // namespace detail

namespace {

using detail::CaptureState;

Mode envMode() {
    if (const char* e = std::getenv("CROCCO_CHECK_MODE")) {
        if (std::strcmp(e, "warn") == 0) return Mode::Warn;
    }
    return Mode::Abort;
}

// Innermost active capture. Captures are created/destroyed on the main
// thread; fail() may run on pool workers, so the violation list itself is
// mutex-guarded while the stack pointer is atomic.
std::atomic<CaptureState*> gCapture{nullptr};

int gSampleRate = [] {
    if (const char* e = std::getenv("CROCCO_CHECK_COMM_SAMPLE")) {
        const int n = std::atoi(e);
        if (n >= 0) return n;
    }
    return 8;
}();
std::atomic<std::uint64_t> gReplayCounter{0};

} // namespace

Mode mode() {
    if (gCapture.load(std::memory_order_acquire)) return Mode::Capture;
    return envMode();
}

void fail(Kind kind, const std::string& message) {
    if (CaptureState* cap = gCapture.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lk(cap->m);
        cap->violations.push_back({kind, message});
        return;
    }
    std::fflush(stdout);
    std::fprintf(stderr, "CROCCO_CHECK [%s] %s\n", kindName(kind),
                 message.c_str());
    std::fflush(stderr);
    if (envMode() == Mode::Abort) std::abort();
}

ScopedFailureCapture::ScopedFailureCapture()
    : state_(new CaptureState),
      prev_(gCapture.exchange(state_, std::memory_order_acq_rel)) {}

ScopedFailureCapture::~ScopedFailureCapture() {
    gCapture.store(prev_, std::memory_order_release);
    delete state_;
}

std::vector<Violation> ScopedFailureCapture::violations() const {
    std::lock_guard<std::mutex> lk(state_->m);
    return state_->violations;
}

std::size_t ScopedFailureCapture::count() const { return violations().size(); }

std::size_t ScopedFailureCapture::count(Kind k) const {
    std::size_t n = 0;
    for (const Violation& v : violations())
        if (v.kind == k) ++n;
    return n;
}

void ScopedFailureCapture::clear() {
    std::lock_guard<std::mutex> lk(state_->m);
    state_->violations.clear();
}

double poisonValue() {
    // A signaling NaN with a recognizable payload: exponent all-ones in the
    // top bits, quiet bit clear, mantissa "c0cc0dead". bit_cast keeps the
    // signaling bit intact where a double literal or arithmetic on a NaN
    // would quiet it.
    return std::bit_cast<double>(std::uint64_t{0x7ff4c0cc0deadULL} << 12);
}

int commGuardSampleRate() { return gSampleRate; }
void setCommGuardSampleRate(int n) { gSampleRate = n < 0 ? 0 : n; }

bool commGuardShouldVerify() {
    if (!enabled || gSampleRate <= 0) return false;
    const auto n = gReplayCounter.fetch_add(1, std::memory_order_relaxed);
    return n % static_cast<std::uint64_t>(gSampleRate) == 0;
}

} // namespace crocco::check
