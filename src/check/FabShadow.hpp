#pragma once

#include "amr/Box.hpp"
#include "check/Check.hpp"

#include <cstdint>
#include <source_location>
#include <vector>

namespace crocco::check {

using amr::Box;
using amr::IntVect;

/// Per-(cell, component) validity map shadowing one FArrayBox allocation.
///
/// States form the ghost-cell lifecycle the checker enforces:
///   Uninit — never written since the fab was defined (or poisoned);
///   Valid  — written through an Array4 / setVal path;
///   Stale  — a ghost cell that *was* valid, invalidated because the fab's
///            valid region has been rewritten since the last exchange
///            (MultiFab::invalidateGhosts / AverageDown).
///
/// Writes through a mutable Array4 mark cells Valid (a write-marking
/// heuristic: a read-modify-write of an Uninit cell is seen as the read
/// first, and the Arena NaN poison backstops anything that slips through).
/// Reads through a const Array4 must find Valid, or check::fail fires with
/// the fab id, boxes, component, and callsite.
class FabShadow {
public:
    enum State : std::uint8_t { Uninit = 0, Valid = 1, Stale = 2 };

    /// (Re)build the map over `alloc` with `valid` as the non-ghost region;
    /// every cell starts in `init`. Assigns a fresh process-unique id.
    void define(const Box& alloc, const Box& valid, int ncomp, State init);

    bool defined() const { return !state_.empty(); }
    std::uint64_t id() const { return id_; }
    const Box& allocBox() const { return alloc_; }
    const Box& validBox() const { return valid_; }
    int nComp() const { return ncomp_; }

    void markAll(State s);
    void markRegion(const Box& region, int comp, int numComp, State s);

    /// Valid ghost cells (outside validBox) become Stale; Uninit ghosts stay
    /// Uninit so the report still distinguishes "never filled" from "filled
    /// but outdated".
    void invalidateGhosts();

    /// State of one (cell, component) — test/report accessor.
    State state(int i, int j, int k, int n) const {
        return static_cast<State>(state_[idx(i, j, k, n)]);
    }

    void noteWrite(int i, int j, int k, int n) {
        if (state_.empty()) return;
        state_[idx(i, j, k, n)] = Valid;
    }

    void checkRead(int i, int j, int k, int n,
                   const std::source_location& loc) const {
        if (state_.empty()) return;
        const std::uint8_t s = state_[idx(i, j, k, n)];
        if (s != Valid) failRead(i, j, k, n, static_cast<State>(s), loc);
    }

private:
    std::size_t idx(int i, int j, int k, int n) const {
        return static_cast<std::size_t>(alloc_.index({i, j, k}) + npts_ * n);
    }
    void failRead(int i, int j, int k, int n, State s,
                  const std::source_location& loc) const;

    Box alloc_;
    Box valid_;
    std::int64_t npts_ = 0;
    int ncomp_ = 0;
    std::uint64_t id_ = 0;
    std::vector<std::uint8_t> state_;
};

/// Bounds-violation report shared by Array4 and FArrayBox accessors; under
/// Warn/Capture the caller must hand back a dummy cell instead of the
/// out-of-range reference.
void failBounds(bool nullView, int i, int j, int k, int n, const IntVect& lo,
                const IntVect& hi, int ncomp, const FabShadow* shadow,
                const std::source_location& loc);

/// Sink/source cell returned after a bounds violation when fail() does not
/// abort, so instrumented code keeps a defined object to reference.
template <typename T>
inline T& dummyCell() {
    thread_local std::remove_const_t<T> cell{};
    return cell;
}

} // namespace crocco::check
