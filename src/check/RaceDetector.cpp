#include "check/RaceDetector.hpp"

#include <sstream>

namespace crocco::check {

thread_local TaskLog* tlTaskLog = nullptr;

namespace {
thread_local int tlTaskIndex = -1;
} // namespace

namespace {

void fmtBox(std::ostream& os, const amr::Box& b) {
    os << "[(" << b.smallEnd(0) << "," << b.smallEnd(1) << "," << b.smallEnd(2)
       << ")-(" << b.bigEnd(0) << "," << b.bigEnd(1) << "," << b.bigEnd(2)
       << ")]";
}

} // namespace

RaceDetector& RaceDetector::instance() {
    static RaceDetector det;
    return det;
}

void RaceDetector::beginLaunch(int ntasks) {
    logs_.assign(static_cast<std::size_t>(ntasks), TaskLog{});
    order_.clear();
    active_ = true;
    ++launches_;
}

void RaceDetector::addHappensBefore(int before, int after) {
    if (!active_ || before < 0 || after < 0 || before == after) return;
    std::lock_guard<std::mutex> lock(orderM_);
    order_.emplace_back(before, after);
}

int RaceDetector::currentTask() { return tlTaskIndex; }

bool RaceDetector::ordered(int a, int b) const {
    // Direct edges only (no transitive closure): the codebase's ordering
    // pattern is a single fan-out from the End task to each halo task.
    for (const auto& [before, after] : order_) {
        if ((before == a && after == b) || (before == b && after == a))
            return true;
    }
    return false;
}

void RaceDetector::endLaunch() {
    active_ = false;
    const int n = static_cast<int>(logs_.size());
    for (int a = 0; a < n; ++a) {
        for (int b = a + 1; b < n; ++b) {
            if (ordered(a, b)) continue; // event-sequenced, not concurrent
            for (const AccessRecord& ra : logs_[static_cast<std::size_t>(a)].records) {
                for (const AccessRecord& rb : logs_[static_cast<std::size_t>(b)].records) {
                    if (ra.fabId != rb.fabId) continue;
                    if (!ra.write && !rb.write) continue;
                    if ((ra.compMask & rb.compMask) == 0) continue;
                    if (!ra.bbox.intersects(rb.bbox)) continue;
                    std::ostringstream os;
                    os << (ra.write && rb.write ? "write-write"
                                                : "read-write")
                       << " overlap on fab#" << ra.fabId << " alloc=";
                    fmtBox(os, ra.allocBox);
                    os << " between task " << a << " (";
                    fmtBox(os, ra.bbox);
                    os << (ra.write ? " write" : " read") << ") and task " << b
                       << " (";
                    fmtBox(os, rb.bbox);
                    os << (rb.write ? " write" : " read") << "), overlap ";
                    fmtBox(os, ra.bbox & rb.bbox);
                    fail(Kind::Race, os.str());
                }
            }
        }
    }
    logs_.clear();
    order_.clear();
}

RaceDetector::TaskScope::TaskScope(int task) {
    tlTaskLog = instance().log(task);
    tlTaskIndex = task;
}

RaceDetector::TaskScope::~TaskScope() {
    tlTaskLog = nullptr;
    tlTaskIndex = -1;
}

} // namespace crocco::check
