#include "check/RaceDetector.hpp"

#include <sstream>

namespace crocco::check {

thread_local TaskLog* tlTaskLog = nullptr;

namespace {

void fmtBox(std::ostream& os, const amr::Box& b) {
    os << "[(" << b.smallEnd(0) << "," << b.smallEnd(1) << "," << b.smallEnd(2)
       << ")-(" << b.bigEnd(0) << "," << b.bigEnd(1) << "," << b.bigEnd(2)
       << ")]";
}

} // namespace

RaceDetector& RaceDetector::instance() {
    static RaceDetector det;
    return det;
}

void RaceDetector::beginLaunch(int ntasks) {
    logs_.assign(static_cast<std::size_t>(ntasks), TaskLog{});
    active_ = true;
    ++launches_;
}

void RaceDetector::endLaunch() {
    active_ = false;
    const int n = static_cast<int>(logs_.size());
    for (int a = 0; a < n; ++a) {
        for (int b = a + 1; b < n; ++b) {
            for (const AccessRecord& ra : logs_[static_cast<std::size_t>(a)].records) {
                for (const AccessRecord& rb : logs_[static_cast<std::size_t>(b)].records) {
                    if (ra.fabId != rb.fabId) continue;
                    if (!ra.write && !rb.write) continue;
                    if ((ra.compMask & rb.compMask) == 0) continue;
                    if (!ra.bbox.intersects(rb.bbox)) continue;
                    std::ostringstream os;
                    os << (ra.write && rb.write ? "write-write"
                                                : "read-write")
                       << " overlap on fab#" << ra.fabId << " alloc=";
                    fmtBox(os, ra.allocBox);
                    os << " between task " << a << " (";
                    fmtBox(os, ra.bbox);
                    os << (ra.write ? " write" : " read") << ") and task " << b
                       << " (";
                    fmtBox(os, rb.bbox);
                    os << (rb.write ? " write" : " read") << "), overlap ";
                    fmtBox(os, ra.bbox & rb.bbox);
                    fail(Kind::Race, os.str());
                }
            }
        }
    }
    logs_.clear();
}

RaceDetector::TaskScope::TaskScope(int task) {
    tlTaskLog = instance().log(task);
}

RaceDetector::TaskScope::~TaskScope() { tlTaskLog = nullptr; }

} // namespace crocco::check
