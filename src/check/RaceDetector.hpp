#pragma once

#include "amr/Box.hpp"
#include "check/FabShadow.hpp"

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace crocco::check {

/// Launch-level race detector for the gpu::ThreadPool fan-out.
///
/// Model: a pool launch runs `ntasks` tasks whose order is unspecified
/// across workers, so any two *different* tasks of the same launch are
/// concurrent. Every Array4 access made while a task runs is charged to
/// that task (nested launches serialize on the calling worker, so their
/// accesses are charged to the enclosing task — matching the pool's
/// execution rules). At endLaunch the per-task logs are scanned pairwise:
/// two tasks conflict when they touched the same fab allocation with
/// intersecting cell bounding boxes and intersecting component sets, and at
/// least one side wrote. Conflicts report through check::fail(Kind::Race).
///
/// Accesses are merged into per-(fab, read/write) records — a bounding box
/// plus a component bitmask (components >= 63 share the top bit) — so the
/// scan is conservative-exact for the codebase's rectangular access
/// patterns: disjoint fabs, disjoint k-slabs, and disjoint components are
/// all recognized as race-free.
struct AccessRecord {
    std::uint64_t fabId = 0;
    amr::Box allocBox;        ///< copied from the shadow at first touch
    amr::Box bbox;            ///< union of cells this task touched
    std::uint64_t compMask = 0;
    bool write = false;
};

struct TaskLog {
    std::vector<AccessRecord> records;

    void record(const FabShadow* sh, int i, int j, int k, int n, bool write) {
        const std::uint64_t id = sh->id();
        const std::uint64_t bit = 1ull << (n < 63 ? n : 63);
        const amr::Box cell({i, j, k}, {i, j, k});
        // Recent-first: kernels touch one fab in long runs, so the match is
        // almost always the last record.
        for (auto it = records.rbegin(); it != records.rend(); ++it) {
            if (it->fabId == id && it->write == write) {
                it->bbox = amr::Box::bboxUnion(it->bbox, cell);
                it->compMask |= bit;
                return;
            }
        }
        records.push_back({id, sh->allocBox(), cell, bit, write});
    }
};

class RaceDetector {
public:
    static RaceDetector& instance();

    /// Called by ThreadPool::run around a parallel launch (serial fallbacks
    /// are deterministic and record nothing).
    void beginLaunch(int ntasks);
    /// Scans the logs, reports conflicts, and clears the launch state.
    void endLaunch();

    /// Log of one task of the active launch; nullptr when no launch is
    /// active (then accesses go unrecorded).
    TaskLog* log(int task) {
        return active_ ? &logs_[static_cast<std::size_t>(task)] : nullptr;
    }

    std::uint64_t launches() const { return launches_; }

    /// Record a happens-before edge inside the active launch: everything
    /// task `before` did precedes everything task `after` does from here
    /// on. Established by a gpu::Event signal/wait pair; the contract is
    /// that the signaler signals as its *last* action and the waiter waits
    /// as its *first* — then the pairwise conflict scan may legitimately
    /// skip the ordered pair (the split advance's End-drain writes ghosts
    /// that the halo tasks read, which is sequencing, not a race).
    /// Thread-safe (multiple waiters record concurrently); no-op when no
    /// launch is active.
    void addHappensBefore(int before, int after);

    /// Task index bound to the calling worker by TaskScope, or -1 when the
    /// caller is not running a task of a tracked launch.
    static int currentTask();

    /// RAII binding of the calling worker to task `task` for the duration
    /// of one task body (installed by ThreadPool's stripe loop).
    class TaskScope {
    public:
        explicit TaskScope(int task);
        ~TaskScope();
        TaskScope(const TaskScope&) = delete;
        TaskScope& operator=(const TaskScope&) = delete;
    };

private:
    bool ordered(int a, int b) const;

    bool active_ = false;
    std::uint64_t launches_ = 0;
    std::vector<TaskLog> logs_;
    std::mutex orderM_;
    std::vector<std::pair<int, int>> order_; ///< (before, after) edges, this launch
};

/// Worker-local log of the task currently executing (nullptr outside a
/// tracked parallel launch).
extern thread_local TaskLog* tlTaskLog;

/// Hot-path hook used by the Array4 accessors.
inline void recordAccess(const FabShadow* sh, int i, int j, int k, int n,
                         bool write) {
    if (TaskLog* log = tlTaskLog) {
        if (sh->defined()) log->record(sh, i, j, k, n, write);
    }
}

} // namespace crocco::check
