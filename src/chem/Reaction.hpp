#pragma once

#include "chem/Thermo.hpp"

namespace crocco::chem {

/// One irreversible Arrhenius reaction: sum nu'_s S_s -> sum nu''_s S_s
/// with molar rate q = A T^b exp(-Ta/T) * prod [X_s]^nu'_s. Produces the
/// species mass production rates w_s of the paper's Eq. 1.
struct Reaction {
    std::vector<int> reactantIdx;
    std::vector<Real> reactantNu;  ///< stoichiometric coefficients nu'
    std::vector<int> productIdx;
    std::vector<Real> productNu;   ///< nu''
    Real A = 0.0;                  ///< pre-exponential factor
    Real b = 0.0;                  ///< temperature exponent
    Real Ta = 0.0;                 ///< activation temperature, K
};

/// A reaction mechanism over a ThermoTable: evaluates w_s (kg/m^3/s) from
/// partial densities and temperature, and integrates the (stiff) reaction
/// source over a flow time step with error-controlled explicit substeps —
/// the operator-split chemistry update of a reacting DNS.
class ReactionMechanism {
public:
    ReactionMechanism(ThermoTable thermo, std::vector<Reaction> reactions);

    const ThermoTable& thermo() const { return thermo_; }
    int nReactions() const { return static_cast<int>(reactions_.size()); }

    /// Mass production rate of each species (sums to zero exactly).
    void productionRates(const Real* rhoS, Real T, Real* wdot) const;

    /// Advance partial densities over dt at constant volume and constant
    /// total internal energy (heat release raises T through the formation
    /// enthalpies). Substeps adaptively; returns the number of substeps.
    int advance(Real* rhoS, Real& T, Real dt) const;

    /// The single-step hydrogen-oxidation model used by the tests:
    /// 2 H2 + O2 -> 2 H2O over ThermoTable::hydrogenAir().
    static ReactionMechanism hydrogenOxygen();

private:
    ThermoTable thermo_;
    std::vector<Reaction> reactions_;
};

} // namespace crocco::chem
