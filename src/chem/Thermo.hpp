#pragma once

#include "amr/Array4.hpp"

#include <string>
#include <vector>

namespace crocco::chem {

using amr::Real;

/// One chemical species: calorically perfect within the model, with a
/// formation enthalpy so reaction heat release is thermodynamically
/// consistent (the h_s° of the paper's Eq. 2).
struct Species {
    std::string name;
    Real molWeight;   ///< kg/kmol
    Real cv;          ///< specific heat at constant volume, J/(kg K)
    Real hFormation;  ///< heat of formation at the reference state, J/kg
};

/// Mixture thermodynamics for the multispecies governing equations (paper
/// Eq. 1-2): total energy
///
///   E = sum_s rho_s cv_s T + rho |u|^2 / 2 + sum_s rho_s h_s°
///
/// with pressure from Dalton's law of partial pressures. CRoCCo's DNS mode
/// solves these equations for chemically reacting hypersonic flows; the DMR
/// benchmark uses the single-species degenerate case.
class ThermoTable {
public:
    explicit ThermoTable(std::vector<Species> species);

    int nSpecies() const { return static_cast<int>(species_.size()); }
    const Species& species(int s) const { return species_[static_cast<std::size_t>(s)]; }
    int indexOf(const std::string& name) const;

    static constexpr Real universalGasConstant = 8314.462618; // J/(kmol K)

    /// Specific gas constant of species s.
    Real Rs(int s) const {
        return universalGasConstant / species_[static_cast<std::size_t>(s)].molWeight;
    }

    /// Mixture density from partial densities.
    Real mixtureDensity(const Real* rhoS) const;

    /// Mass-weighted mixture cv and gas constant.
    Real mixtureCv(const Real* rhoS) const;
    Real mixtureR(const Real* rhoS) const;

    /// Temperature from partial densities and the *internal* energy density
    /// e = E - rho|u|^2/2 (inverts Eq. 2; linear in T for this model).
    Real temperature(const Real* rhoS, Real internalEnergy) const;

    /// Internal energy density from partial densities and temperature.
    Real internalEnergy(const Real* rhoS, Real T) const;

    Real pressure(const Real* rhoS, Real T) const;

    /// Frozen sound speed: a^2 = gamma_mix R_mix T.
    Real soundSpeed(const Real* rhoS, Real T) const;

    /// A ready-made 5-species air + hydrogen set for the combustion tests
    /// (H2, O2, H2O, N2, OH) with representative constants.
    static ThermoTable hydrogenAir();

    /// Single-species perfect gas equivalent to core::GasModel (gamma,
    /// Rgas) — the degenerate case the DMR benchmark runs.
    static ThermoTable singleGas(Real gamma, Real Rgas);

private:
    std::vector<Species> species_;
};

} // namespace crocco::chem
