// crocco-analyze:allow-file(R1): the per-cell chemistry integrator batches
// species pencils through a raw scratch buffer (no Array4 view exists).
#include "chem/Reaction.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace crocco::chem {

ReactionMechanism::ReactionMechanism(ThermoTable thermo,
                                     std::vector<Reaction> reactions)
    : thermo_(std::move(thermo)), reactions_(std::move(reactions)) {
    // Every reaction must conserve mass: sum nu' W = sum nu'' W.
    for ([[maybe_unused]] const Reaction& r : reactions_) {
        Real in = 0.0, out = 0.0;
        for (std::size_t i = 0; i < r.reactantIdx.size(); ++i)
            in += r.reactantNu[i] * thermo_.species(r.reactantIdx[i]).molWeight;
        for (std::size_t i = 0; i < r.productIdx.size(); ++i)
            out += r.productNu[i] * thermo_.species(r.productIdx[i]).molWeight;
        assert(std::abs(in - out) < 1e-9 * in);
    }
}

void ReactionMechanism::productionRates(const Real* rhoS, Real T, Real* wdot) const {
    const int ns = thermo_.nSpecies();
    std::fill(wdot, wdot + ns, 0.0);
    if (T <= 0.0) return;
    for (const Reaction& r : reactions_) {
        // Molar rate from concentrations [X_s] = rho_s / W_s (kmol/m^3).
        Real q = r.A * std::pow(T, r.b) * std::exp(-r.Ta / T);
        for (std::size_t i = 0; i < r.reactantIdx.size(); ++i) {
            const int s = r.reactantIdx[i];
            const Real conc =
                std::max(rhoS[s], 0.0) / thermo_.species(s).molWeight;
            q *= std::pow(conc, r.reactantNu[i]);
        }
        for (std::size_t i = 0; i < r.reactantIdx.size(); ++i) {
            const int s = r.reactantIdx[i];
            wdot[s] -= r.reactantNu[i] * thermo_.species(s).molWeight * q;
        }
        for (std::size_t i = 0; i < r.productIdx.size(); ++i) {
            const int s = r.productIdx[i];
            wdot[s] += r.productNu[i] * thermo_.species(s).molWeight * q;
        }
    }
}

int ReactionMechanism::advance(Real* rhoS, Real& T, Real dt) const {
    const int ns = thermo_.nSpecies();
    std::vector<Real> wdot(static_cast<std::size_t>(ns));
    // Constant-volume, constant-internal-energy reactor: the invariant is
    // e = sum rho_s (cv_s T + h_s°); after each substep T is re-derived
    // from it, so heat release shows up as a temperature rise.
    const Real e0 = thermo_.internalEnergy(rhoS, T);
    Real remaining = dt;
    int steps = 0;
    while (remaining > 0.0 && steps < 100000) {
        productionRates(rhoS, T, wdot.data());
        // Stability: limit the substep so no species loses more than 20%
        // of its mass (explicit handling of the stiff source).
        Real h = remaining;
        for (int s = 0; s < ns; ++s) {
            if (wdot[static_cast<std::size_t>(s)] < 0.0 && rhoS[s] > 0.0) {
                h = std::min(h, -0.2 * rhoS[s] / wdot[static_cast<std::size_t>(s)]);
            }
        }
        h = std::max(h, remaining * 1e-6); // never stall
        for (int s = 0; s < ns; ++s) {
            rhoS[s] = std::max(0.0, rhoS[s] + h * wdot[static_cast<std::size_t>(s)]);
        }
        T = thermo_.temperature(rhoS, e0);
        remaining -= h;
        ++steps;
    }
    return steps;
}

ReactionMechanism ReactionMechanism::hydrogenOxygen() {
    ThermoTable thermo = ThermoTable::hydrogenAir();
    Reaction r;
    r.reactantIdx = {thermo.indexOf("H2"), thermo.indexOf("O2")};
    r.reactantNu = {2.0, 1.0};
    r.productIdx = {thermo.indexOf("H2O")};
    r.productNu = {2.0};
    r.A = 6.0e7; // tuned for ignition on millisecond scales at ~1200 K
    r.b = 0.0;
    r.Ta = 8000.0;
    return ReactionMechanism(std::move(thermo), {r});
}

} // namespace crocco::chem
