#include "chem/Thermo.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace crocco::chem {

ThermoTable::ThermoTable(std::vector<Species> species)
    : species_(std::move(species)) {
    assert(!species_.empty());
    for ([[maybe_unused]] const Species& s : species_) {
        assert(s.molWeight > 0 && s.cv > 0);
    }
}

int ThermoTable::indexOf(const std::string& name) const {
    for (int s = 0; s < nSpecies(); ++s)
        if (species_[static_cast<std::size_t>(s)].name == name) return s;
    throw std::out_of_range("unknown species: " + name);
}

Real ThermoTable::mixtureDensity(const Real* rhoS) const {
    Real rho = 0.0;
    for (int s = 0; s < nSpecies(); ++s) rho += rhoS[s];
    return rho;
}

Real ThermoTable::mixtureCv(const Real* rhoS) const {
    Real cv = 0.0;
    const Real rho = mixtureDensity(rhoS);
    for (int s = 0; s < nSpecies(); ++s)
        cv += rhoS[s] * species_[static_cast<std::size_t>(s)].cv;
    return cv / rho;
}

Real ThermoTable::mixtureR(const Real* rhoS) const {
    Real r = 0.0;
    const Real rho = mixtureDensity(rhoS);
    for (int s = 0; s < nSpecies(); ++s) r += rhoS[s] * Rs(s);
    return r / rho;
}

Real ThermoTable::temperature(const Real* rhoS, Real internalEnergy) const {
    // e = sum_s rho_s (cv_s T + h_s°)  (Eq. 2 without the kinetic term)
    Real rhoCv = 0.0, chem = 0.0;
    for (int s = 0; s < nSpecies(); ++s) {
        rhoCv += rhoS[s] * species_[static_cast<std::size_t>(s)].cv;
        chem += rhoS[s] * species_[static_cast<std::size_t>(s)].hFormation;
    }
    return (internalEnergy - chem) / rhoCv;
}

Real ThermoTable::internalEnergy(const Real* rhoS, Real T) const {
    Real e = 0.0;
    for (int s = 0; s < nSpecies(); ++s) {
        const Species& sp = species_[static_cast<std::size_t>(s)];
        e += rhoS[s] * (sp.cv * T + sp.hFormation);
    }
    return e;
}

Real ThermoTable::pressure(const Real* rhoS, Real T) const {
    Real p = 0.0;
    for (int s = 0; s < nSpecies(); ++s) p += rhoS[s] * Rs(s) * T;
    return p;
}

Real ThermoTable::soundSpeed(const Real* rhoS, Real T) const {
    const Real cv = mixtureCv(rhoS);
    const Real R = mixtureR(rhoS);
    const Real gamma = (cv + R) / cv;
    return std::sqrt(gamma * R * T);
}

ThermoTable ThermoTable::hydrogenAir() {
    // Representative constant-cv values near combustion temperatures.
    // Molecular weights are built from exactly H = 1.008 and O = 16.000 so
    // reaction stoichiometry balances mass to round-off, not just to the
    // precision of tabulated atomic weights.
    return ThermoTable({
        {"H2", 2.016, 10200.0, 0.0},
        {"O2", 32.000, 700.0, 0.0},
        {"H2O", 18.016, 1700.0, -13.4e6},
        {"N2", 28.014, 760.0, 0.0},
        {"OH", 17.008, 1300.0, 2.3e6},
    });
}

ThermoTable ThermoTable::singleGas(Real gamma, Real Rgas) {
    const Real molWeight = universalGasConstant / Rgas;
    return ThermoTable({{"gas", molWeight, Rgas / (gamma - 1.0), 0.0}});
}

} // namespace crocco::chem
