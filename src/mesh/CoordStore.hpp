#pragma once

#include "amr/FArrayBox.hpp"
#include "amr/Geometry.hpp"
#include "amr/MultiFab.hpp"
#include "mesh/Mapping.hpp"

#include <memory>
#include <string>
#include <vector>

namespace crocco::mesh {

/// Source of physical coordinates for newly created AMR patches (§III-C,
/// "Regridding").
///
/// Curvilinear grids are generated once from an analytic Mapping and stored.
/// When Regrid creates new patches, their coordinates must come from
/// somewhere:
///
///  * Mode::File — the paper's *first* implementation: each new patch
///    serially reads its coordinates from a binary file with std::iostream.
///    Noticeable overhead on CPU, worse on GPU (host staging + copy-in).
///  * Mode::Memory — the *current* implementation: the entire AMR grid is
///    read into a stored variable up front and getCoords() serves patches
///    from memory, trading footprint for regrid speed.
///
/// bench/ablation_coordstore measures the difference.
class CoordStore {
public:
    enum class Mode { Memory, File };

    CoordStore(std::shared_ptr<const Mapping> mapping, const amr::Geometry& geom0,
               const amr::IntVect& refRatio, int maxLevel, int ngrow,
               Mode mode = Mode::Memory, std::string fileDir = ".");

    Mode mode() const { return mode_; }
    int nGrow() const { return ngrow_; }

    /// Fill a 3-component coordinates MultiFab of level `lev` — valid cells
    /// *and* all ghost cells (ghosts beyond periodic faces carry
    /// periodic-image coordinates; beyond physical faces the mapping's
    /// smooth extension).
    void getCoords(amr::MultiFab& coords, int lev) const;

    /// Same, for a single fab (used by tests and the file-mode hot path).
    void getCoords(amr::FArrayBox& fab, int lev) const;

    /// Physical coordinates of cell center `cell` at level `lev`, honoring
    /// periodic wrapping.
    std::array<Real, 3> cellCoord(int lev, const amr::IntVect& cell) const;

    /// Footprint of the in-memory grids (0 in File mode) — the "high memory
    /// cost" side of the paper's tradeoff.
    std::int64_t bytesStored() const;

    const amr::Geometry& levelGeom(int lev) const { return geoms_[lev]; }

private:
    std::string levelFile(int lev) const;
    void buildLevel(int lev);

    std::shared_ptr<const Mapping> mapping_;
    std::vector<amr::Geometry> geoms_;
    int ngrow_;
    Mode mode_;
    std::string fileDir_;
    std::vector<amr::FArrayBox> stored_; // Memory mode: one grid per level
};

} // namespace crocco::mesh
