#include "mesh/Mapping.hpp"

#include <cassert>
#include <cmath>

namespace crocco::mesh {

namespace {
constexpr Real pi = 3.14159265358979323846;

Real lerp1(Real lo, Real hi, Real t) { return lo + (hi - lo) * t; }
} // namespace

std::array<Real, 3> UniformMapping::toPhysical(Real xi, Real eta, Real zeta) const {
    return {lerp1(lo_[0], hi_[0], xi), lerp1(lo_[1], hi_[1], eta),
            lerp1(lo_[2], hi_[2], zeta)};
}

StretchedMapping::StretchedMapping(std::array<Real, 3> lo, std::array<Real, 3> hi,
                                   int dim, Real beta)
    : lo_(lo), hi_(hi), dim_(dim), beta_(beta) {
    assert(dim >= 0 && dim < 3 && beta > 0);
}

std::array<Real, 3> StretchedMapping::toPhysical(Real xi, Real eta, Real zeta) const {
    std::array<Real, 3> s{xi, eta, zeta};
    // tanh clustering toward s = 0 (small physical spacing at the wall);
    // smooth and monotone on the extended computational line, so ghost
    // coordinates extrapolate naturally.
    s[dim_] = 1.0 - std::tanh(beta_ * (1.0 - s[dim_])) / std::tanh(beta_);
    return {lerp1(lo_[0], hi_[0], s[0]), lerp1(lo_[1], hi_[1], s[1]),
            lerp1(lo_[2], hi_[2], s[2])};
}

RampMapping::RampMapping(std::array<Real, 3> lo, std::array<Real, 3> hi,
                         Real angleDeg, Real cornerXi)
    : lo_(lo), hi_(hi), tanAngle_(std::tan(angleDeg * pi / 180.0)),
      cornerXi_(cornerXi) {
    assert(cornerXi > 0 && cornerXi < 1);
}

std::array<Real, 3> RampMapping::toPhysical(Real xi, Real eta, Real zeta) const {
    const Real x = lerp1(lo_[0], hi_[0], xi);
    const Real z = lerp1(lo_[2], hi_[2], zeta);
    // Wall height rises past the corner; a quadratic blend over a short
    // streamwise span keeps the mapping C1 so the metrics stay smooth.
    const Real xc = lerp1(lo_[0], hi_[0], cornerXi_);
    const Real blend = 0.05 * (hi_[0] - lo_[0]);
    Real wall;
    if (x <= xc - blend) {
        wall = 0.0;
    } else if (x >= xc + blend) {
        wall = (x - xc) * tanAngle_;
    } else {
        const Real t = (x - (xc - blend)) / (2 * blend);
        wall = t * t * blend * tanAngle_; // C1 parabolic fillet
    }
    // Grid lines shear from the deflected wall (eta = 0) to the straight
    // upper boundary (eta = 1).
    const Real y = lerp1(lo_[1] + wall, hi_[1], eta);
    return {x, y, z};
}

WavyMapping::WavyMapping(std::array<Real, 3> lo, std::array<Real, 3> hi,
                         Real amplitude)
    : lo_(lo), hi_(hi), amp_(amplitude) {}

std::array<Real, 3> WavyMapping::toPhysical(Real xi, Real eta, Real zeta) const {
    const Real x = lerp1(lo_[0], hi_[0], xi);
    const Real y = lerp1(lo_[1], hi_[1], eta);
    const Real z = lerp1(lo_[2], hi_[2], zeta);
    const Real lx = hi_[0] - lo_[0], ly = hi_[1] - lo_[1], lz = hi_[2] - lo_[2];
    return {x + amp_ * lx * std::sin(2 * pi * eta) * std::sin(2 * pi * zeta),
            y + amp_ * ly * std::sin(2 * pi * xi) * std::sin(2 * pi * zeta),
            z + amp_ * lz * std::sin(2 * pi * xi) * std::sin(2 * pi * eta)};
}

InteriorWavyMapping::InteriorWavyMapping(std::array<Real, 3> lo,
                                         std::array<Real, 3> hi, Real amplitude)
    : lo_(lo), hi_(hi), amp_(amplitude) {}

std::array<Real, 3> InteriorWavyMapping::toPhysical(Real xi, Real eta,
                                                    Real zeta) const {
    const Real x = lerp1(lo_[0], hi_[0], xi);
    const Real y = lerp1(lo_[1], hi_[1], eta);
    const Real z = lerp1(lo_[2], hi_[2], zeta);
    const Real sx = std::sin(pi * xi), sy = std::sin(pi * eta);
    // Only x is perturbed. The sin^2 factors are even about every face, so a
    // mirrored ghost index maps to the exact mirror point (x unchanged, y
    // negated about the wall) — required by the index-mirror wall BCs. The
    // eta dependence of x still makes the grid genuinely non-orthogonal.
    const Real bump = amp_ * sx * sx * sy * sy;
    return {x + bump * (hi_[0] - lo_[0]), y, z};
}

} // namespace crocco::mesh
