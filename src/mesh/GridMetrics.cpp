#include "mesh/GridMetrics.hpp"

#include "amr/FArrayBox.hpp"

#include <cassert>
#include <cmath>

namespace crocco::mesh {

using amr::FArrayBox;
using amr::IntVect;

namespace {

/// 4th-order central first derivative along dimension d of component m.
inline Real d1(const Array4<const Real>& f, int i, int j, int k, int m, int d,
               Real invdx) {
    const IntVect e = IntVect::basis(d);
    return (-f(i + 2 * e[0], j + 2 * e[1], k + 2 * e[2], m) +
            8.0 * f(i + e[0], j + e[1], k + e[2], m) -
            8.0 * f(i - e[0], j - e[1], k - e[2], m) +
            f(i - 2 * e[0], j - 2 * e[1], k - 2 * e[2], m)) *
           (invdx / 12.0);
}

/// 2nd-order central first derivative (used for the second metrics).
inline Real d1c2(const Array4<const Real>& f, int i, int j, int k, int m, int d,
                 Real invdx) {
    const IntVect e = IntVect::basis(d);
    return (f(i + e[0], j + e[1], k + e[2], m) -
            f(i - e[0], j - e[1], k - e[2], m)) *
           (0.5 * invdx);
}

/// Invert a 3x3 matrix T (rows: physical dims, cols: computational dims);
/// returns det(T).
inline Real invert3x3(const Real T[3][3], Real M[3][3]) {
    const Real det = T[0][0] * (T[1][1] * T[2][2] - T[1][2] * T[2][1]) -
                     T[0][1] * (T[1][0] * T[2][2] - T[1][2] * T[2][0]) +
                     T[0][2] * (T[1][0] * T[2][1] - T[1][1] * T[2][0]);
    const Real inv = 1.0 / det;
    M[0][0] = (T[1][1] * T[2][2] - T[1][2] * T[2][1]) * inv;
    M[0][1] = (T[0][2] * T[2][1] - T[0][1] * T[2][2]) * inv;
    M[0][2] = (T[0][1] * T[1][2] - T[0][2] * T[1][1]) * inv;
    M[1][0] = (T[1][2] * T[2][0] - T[1][0] * T[2][2]) * inv;
    M[1][1] = (T[0][0] * T[2][2] - T[0][2] * T[2][0]) * inv;
    M[1][2] = (T[0][2] * T[1][0] - T[0][0] * T[1][2]) * inv;
    M[2][0] = (T[1][0] * T[2][1] - T[1][1] * T[2][0]) * inv;
    M[2][1] = (T[0][1] * T[2][0] - T[0][0] * T[2][1]) * inv;
    M[2][2] = (T[0][0] * T[1][1] - T[0][1] * T[1][0]) * inv;
    return det;
}

} // namespace

Real jacobian(const Array4<const Real>& metrics, int i, int j, int k) {
    // det(M) = 1/J for M = ∂ξ/∂x.
    const Real a00 = metrics(i, j, k, metric1(0, 0));
    const Real a01 = metrics(i, j, k, metric1(0, 1));
    const Real a02 = metrics(i, j, k, metric1(0, 2));
    const Real a10 = metrics(i, j, k, metric1(1, 0));
    const Real a11 = metrics(i, j, k, metric1(1, 1));
    const Real a12 = metrics(i, j, k, metric1(1, 2));
    const Real a20 = metrics(i, j, k, metric1(2, 0));
    const Real a21 = metrics(i, j, k, metric1(2, 1));
    const Real a22 = metrics(i, j, k, metric1(2, 2));
    const Real detM = a00 * (a11 * a22 - a12 * a21) -
                      a01 * (a10 * a22 - a12 * a20) +
                      a02 * (a10 * a21 - a11 * a20);
    return 1.0 / detM;
}

void computeMetricsFab(const Array4<const Real>& coords, const Array4<Real>& metrics,
                       const Box& region, const std::array<Real, 3>& dxi) {
    // Pass 1: first metrics M = (∂x/∂ξ)^-1 on region.grow(1), held in a
    // scratch fab so pass 2 can difference them.
    const Box r1 = region.grow(1);
    FArrayBox firstTmp(r1, 9);
    auto first = firstTmp.array();
    amr::forEachCell(r1, [&](int i, int j, int k) {
        Real T[3][3], M[3][3];
        for (int m = 0; m < 3; ++m)
            for (int d = 0; d < 3; ++d)
                T[m][d] = d1(coords, i, j, k, m, d, 1.0 / dxi[d]);
        invert3x3(T, M);
        for (int d = 0; d < 3; ++d)
            for (int m = 0; m < 3; ++m) first(i, j, k, metric1(d, m)) = M[d][m];
    });

    auto firstC = firstTmp.const_array();
    amr::forEachCell(region, [&](int i, int j, int k) {
        for (int n = 0; n < 9; ++n) metrics(i, j, k, n) = firstC(i, j, k, n);
        // Second metrics by the chain rule:
        //   ∂²ξ_d/∂x_j∂x_k = Σ_e (∂ξ_e/∂x_k) ∂(∂ξ_d/∂x_j)/∂ξ_e
        for (int d = 0; d < 3; ++d) {
            for (int jj = 0; jj < 3; ++jj) {
                for (int kk = jj; kk < 3; ++kk) {
                    Real s = 0.0;
                    for (int e = 0; e < 3; ++e) {
                        s += firstC(i, j, k, metric1(e, kk)) *
                             d1c2(firstC, i, j, k, metric1(d, jj), e, 1.0 / dxi[e]);
                    }
                    metrics(i, j, k, metric2(d, jj, kk)) = s;
                }
            }
        }
    });
}

void computeMetrics(const amr::MultiFab& coords, amr::MultiFab& metrics,
                    const amr::Geometry& geom) {
    assert(coords.nGrow() >= metrics.nGrow() + 3);
    assert(metrics.nComp() == MetricComps && coords.nComp() == 3);
    assert(coords.boxArray() == metrics.boxArray());
    const std::array<Real, 3> dxi = geom.cellSizeArray();
    for (int i = 0; i < metrics.numFabs(); ++i) {
        computeMetricsFab(coords.const_array(i), metrics.array(i),
                          metrics.grownBox(i), dxi);
    }
}

Real gclResidual(const Array4<const Real>& metrics, const Box& region,
                 const std::array<Real, 3>& dxi) {
    Real worst = 0.0;
    amr::forEachCell(region, [&](int i, int j, int k) {
        for (int m = 0; m < 3; ++m) {
            Real r = 0.0;
            for (int d = 0; d < 3; ++d) {
                const IntVect e = IntVect::basis(d);
                // 2nd-order central difference of J * ∂ξ_d/∂x_m along ξ_d.
                const Real fp = jacobian(metrics, i + e[0], j + e[1], k + e[2]) *
                                metrics(i + e[0], j + e[1], k + e[2], metric1(d, m));
                const Real fm = jacobian(metrics, i - e[0], j - e[1], k - e[2]) *
                                metrics(i - e[0], j - e[1], k - e[2], metric1(d, m));
                r += (fp - fm) / (2.0 * dxi[d]);
            }
            worst = std::max(worst, std::abs(r));
        }
    });
    return worst;
}

} // namespace crocco::mesh
