#pragma once

#include "amr/Array4.hpp"

#include <array>
#include <memory>

namespace crocco::mesh {

using amr::Real;

/// Analytic mapping from the unit computational cube (ξ, η, ζ) ∈ [0,1]³ to
/// physical space (x, y, z). CRoCCo's grids are generated from such
/// mappings ("combinations of complex hyperbolic and trigonometric
/// functions", §III-C) and then *stored*, because evaluating them per access
/// is too expensive — that storage decision is what drives the curvilinear
/// code's 3x memory footprint and the coordinate ParallelCopy.
class Mapping {
public:
    virtual ~Mapping() = default;
    virtual std::array<Real, 3> toPhysical(Real xi, Real eta, Real zeta) const = 0;
};

/// Identity mapping scaled to a box: a uniform Cartesian grid. The control
/// case — curvilinear machinery run on this grid must agree with the
/// Cartesian code path to round-off.
class UniformMapping final : public Mapping {
public:
    UniformMapping(std::array<Real, 3> lo, std::array<Real, 3> hi)
        : lo_(lo), hi_(hi) {}
    std::array<Real, 3> toPhysical(Real xi, Real eta, Real zeta) const override;

private:
    std::array<Real, 3> lo_, hi_;
};

/// Hyperbolic-tangent wall clustering along one dimension (the standard
/// boundary-layer stretching CRoCCo uses for hypersonic wall-bounded flows):
/// grid lines concentrate near the low face of dimension `dim` with
/// stretching strength `beta` > 0.
class StretchedMapping final : public Mapping {
public:
    StretchedMapping(std::array<Real, 3> lo, std::array<Real, 3> hi, int dim,
                     Real beta);
    std::array<Real, 3> toPhysical(Real xi, Real eta, Real zeta) const override;

private:
    std::array<Real, 3> lo_, hi_;
    int dim_;
    Real beta_;
};

/// Compression-corner ("ramp") geometry: flat plate that bends upward by
/// `angleDeg` at fraction `cornerXi` of the streamwise extent, extruded in
/// the spanwise (z) direction, with smooth grid-line blending in y between
/// the deflected wall and the straight upper boundary. The 30-degree
/// inviscid ramp of the double Mach reflection problem (§V-B) uses this with
/// the shock impinging on the inclined face.
class RampMapping final : public Mapping {
public:
    RampMapping(std::array<Real, 3> lo, std::array<Real, 3> hi, Real angleDeg,
                Real cornerXi);
    std::array<Real, 3> toPhysical(Real xi, Real eta, Real zeta) const override;

private:
    std::array<Real, 3> lo_, hi_;
    Real tanAngle_;
    Real cornerXi_;
};

/// Smoothly wavy grid (sinusoidal perturbation of all interior grid lines).
/// Not a physical geometry — a stress test for free-stream preservation and
/// metric accuracy on a grid with non-trivial curvature in every direction.
class WavyMapping final : public Mapping {
public:
    WavyMapping(std::array<Real, 3> lo, std::array<Real, 3> hi, Real amplitude);
    std::array<Real, 3> toPhysical(Real xi, Real eta, Real zeta) const override;

private:
    std::array<Real, 3> lo_, hi_;
    Real amp_;
};

/// Boundary-conformal wavy grid: x and y grid lines are perturbed by
/// sin²(πξ)·sin²(πη) terms that vanish *with zero slope* on every domain
/// face, so all six faces stay planar and wall-mirror ghost indexing stays
/// geometrically consistent, while the interior is genuinely curvilinear.
/// No ζ dependence, so the spanwise direction remains periodic-compatible.
/// This is the grid the curvilinear DMR runs on (§V-B: "although unnecessary
/// for this problem, we use general curvilinear coordinates").
class InteriorWavyMapping final : public Mapping {
public:
    InteriorWavyMapping(std::array<Real, 3> lo, std::array<Real, 3> hi,
                        Real amplitude);
    std::array<Real, 3> toPhysical(Real xi, Real eta, Real zeta) const override;

private:
    std::array<Real, 3> lo_, hi_;
    Real amp_;
};

} // namespace crocco::mesh
