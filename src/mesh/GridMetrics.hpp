#pragma once

#include "amr/Geometry.hpp"
#include "amr/MultiFab.hpp"

namespace crocco::mesh {

using amr::Array4;
using amr::Box;
using amr::Real;

/// Grid-metric storage layout (§III-C "Data management"): solving on
/// generalized curvilinear grids needs high-order reconstructions of the
/// first and second derivatives of the computational coordinates (ξ, η, ζ)
/// with respect to physical (x, y, z) — 9 first + 18 symmetric second
/// derivatives = the paper's 27-component metrics MultiFab.
inline constexpr int MetricComps = 27;

/// Component of ∂ξ_d/∂x_j.
constexpr int metric1(int d, int j) { return 3 * d + j; }

/// Component of ∂²ξ_d/∂x_j∂x_k (symmetric in j,k).
constexpr int metric2(int d, int j, int k) {
    // Voigt order: (0,0) (1,1) (2,2) (1,2) (0,2) (0,1)
    const int a = j < k ? j : k;
    const int b = j < k ? k : j;
    const int sym = (a == b) ? a : (a == 1 ? 3 : (b == 2 ? 4 : 5));
    return 9 + 6 * d + sym;
}

/// Jacobian determinant J = det(∂x/∂ξ) recovered from the stored inverse
/// metrics at one cell (J is not stored; the kernels recompute this cheap
/// 3x3 determinant, keeping the metrics MultiFab at 27 components).
Real jacobian(const Array4<const Real>& metrics, int i, int j, int k);

/// Compute the 27 metric components over `region` of one fab.
/// `coords` must provide cell-center physical coordinates on
/// region.grow(3): first metrics use 4th-order central differences
/// (±2 cells) and second metrics difference the first metrics once more
/// (±1 cell). `dxi` is the computational cell spacing.
void computeMetricsFab(const Array4<const Real>& coords, const Array4<Real>& metrics,
                       const Box& region, const std::array<Real, 3>& dxi);

/// Level-wide driver: fills `metrics` (valid + ghost) from `coords`.
/// Requires coords.nGrow() >= metrics.nGrow() + 3.
void computeMetrics(const amr::MultiFab& coords, amr::MultiFab& metrics,
                    const amr::Geometry& geom);

/// Discrete geometric-conservation-law residual max-norm over `region`:
/// max_j | Σ_d ∂(J·∂ξ_d/∂x_j)/∂ξ_d |. Zero in exact arithmetic on any grid;
/// truncation-order small for the discrete metrics. The free-stream
/// preservation tests bound this.
Real gclResidual(const Array4<const Real>& metrics, const Box& region,
                 const std::array<Real, 3>& dxi);

} // namespace crocco::mesh
