// crocco-analyze:allow-file(R1): the curvilinear coordinate store serializes
// raw coordinate planes to disk; byte-level I/O needs the base pointer.
#include "mesh/CoordStore.hpp"

#include <cassert>
#include <fstream>

namespace crocco::mesh {

using amr::Box;
using amr::FArrayBox;
using amr::IntVect;

CoordStore::CoordStore(std::shared_ptr<const Mapping> mapping,
                       const amr::Geometry& geom0, const amr::IntVect& refRatio,
                       int maxLevel, int ngrow, Mode mode, std::string fileDir)
    : mapping_(std::move(mapping)), ngrow_(ngrow), mode_(mode),
      fileDir_(std::move(fileDir)) {
    assert(mapping_ && maxLevel >= 0 && ngrow >= 0);
    geoms_.push_back(geom0);
    for (int lev = 1; lev <= maxLevel; ++lev)
        geoms_.push_back(geoms_.back().refine(refRatio));
    for (int lev = 0; lev <= maxLevel; ++lev) buildLevel(lev);
}

std::array<Real, 3> CoordStore::cellCoord(int lev, const amr::IntVect& cell) const {
    // Always the smooth *continuous* extension of the mapping, including
    // beyond periodic faces: metric differencing and curvilinear
    // interpolation both need globally consistent coordinate values, never
    // periodic images (which would jump by the domain span at the seam).
    const amr::Geometry& g = geoms_[lev];
    Real s[3];
    for (int d = 0; d < 3; ++d) {
        s[d] = (cell[d] + 0.5) / g.domain().length(d);
    }
    return mapping_->toPhysical(s[0], s[1], s[2]);
}

std::string CoordStore::levelFile(int lev) const {
    return fileDir_ + "/coords_lev" + std::to_string(lev) + ".bin";
}

void CoordStore::buildLevel(int lev) {
    const Box grown = geoms_[lev].domain().grow(ngrow_);
    FArrayBox grid(grown, 3);
    auto a = grid.array();
    amr::forEachCell(grown, [&](int i, int j, int k) {
        const auto p = cellCoord(lev, IntVect{i, j, k});
        for (int m = 0; m < 3; ++m) a(i, j, k, m) = p[m];
    });
    if (mode_ == Mode::Memory) {
        stored_.push_back(std::move(grid));
    } else {
        // First-implementation path: the grid generator dumps the level to a
        // binary file; patches read it back at regrid time.
        std::ofstream os(levelFile(lev), std::ios::binary);
        auto ca = grid.const_array();
        for (int m = 0; m < 3; ++m) {
            amr::forEachCell(grown, [&](int i, int j, int k) {
                const Real v = ca(i, j, k, m);
                os.write(reinterpret_cast<const char*>(&v), sizeof(Real));
            });
        }
    }
}

void CoordStore::getCoords(amr::FArrayBox& fab, int lev) const {
    assert(fab.nComp() >= 3);
    const Box grown = geoms_[lev].domain().grow(ngrow_);
    const Box target = fab.box();
    assert(grown.contains(target));
    if (mode_ == Mode::Memory) {
        fab.copyFrom(stored_[lev], target, 0, 0, 3);
        return;
    }
    // Serial binary read, one i-row seek at a time — deliberately the
    // paper's slow first implementation.
    std::ifstream is(levelFile(lev), std::ios::binary);
    assert(is.good());
    auto a = fab.array();
    const std::int64_t pts = grown.numPts();
    std::vector<Real> row(target.length(0));
    for (int m = 0; m < 3; ++m) {
        for (int k = target.smallEnd(2); k <= target.bigEnd(2); ++k) {
            for (int j = target.smallEnd(1); j <= target.bigEnd(1); ++j) {
                const std::int64_t off =
                    grown.index(IntVect{target.smallEnd(0), j, k}) + m * pts;
                is.seekg(off * static_cast<std::int64_t>(sizeof(Real)));
                is.read(reinterpret_cast<char*>(row.data()),
                        static_cast<std::streamsize>(row.size() * sizeof(Real)));
                for (int i = 0; i < target.length(0); ++i)
                    a(target.smallEnd(0) + i, j, k, m) = row[static_cast<std::size_t>(i)];
            }
        }
    }
}

void CoordStore::getCoords(amr::MultiFab& coords, int lev) const {
    assert(coords.nComp() == 3);
    assert(coords.nGrow() <= ngrow_);
    for (int i = 0; i < coords.numFabs(); ++i) getCoords(coords.fab(i), lev);
}

std::int64_t CoordStore::bytesStored() const {
    std::int64_t b = 0;
    for (const FArrayBox& f : stored_)
        b += f.size() * static_cast<std::int64_t>(sizeof(Real));
    return b;
}

} // namespace crocco::mesh
