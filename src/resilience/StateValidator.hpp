#pragma once

#include "amr/MultiFab.hpp"
#include "core/State.hpp"
#include "resilience/Health.hpp"

#include <vector>

namespace crocco::resilience {

/// Cheap fused scan over one level's conserved state: a parallel
/// gpu::ReduceMax prescreen per fab (a pure per-cell predicate — NaN/Inf in
/// any component, or negative decoded density/pressure) followed by a
/// serial report pass only over fabs the prescreen flagged, so faultCount
/// and the fault list are deterministic at any thread count. This is the
/// shock-capturing failure signature of WENO near strong discontinuities
/// (the paper's DMR regime): blow-ups first appear as negative density or
/// pressure, then as NaN everywhere.
HealthReport validateState(const amr::MultiFab& U, const core::GasModel& gas,
                           int level, int maxReported = 8);

/// Scan levels 0..finestLevel of a hierarchy; reports are merged with the
/// same fault cap.
HealthReport validateHierarchy(const std::vector<amr::MultiFab>& U,
                               int finestLevel, const core::GasModel& gas,
                               int maxReported = 8);

} // namespace crocco::resilience
