#pragma once

#include "amr/MultiFab.hpp"
#include "core/State.hpp"
#include "resilience/Health.hpp"

#include <vector>

namespace crocco::resilience {

/// Cheap fused scan over one level's conserved state: one pass per fab
/// through the gpu::ParallelFor one-thread-per-cell decomposition, checking
/// every component for NaN/Inf and the decoded thermodynamic state for
/// negative density/pressure. This is the shock-capturing failure signature
/// of WENO near strong discontinuities (the paper's DMR regime): blow-ups
/// first appear as negative density or pressure, then as NaN everywhere.
HealthReport validateState(const amr::MultiFab& U, const core::GasModel& gas,
                           int level, int maxReported = 8);

/// Scan levels 0..finestLevel of a hierarchy; reports are merged with the
/// same fault cap.
HealthReport validateHierarchy(const std::vector<amr::MultiFab>& U,
                               int finestLevel, const core::GasModel& gas,
                               int maxReported = 8);

} // namespace crocco::resilience
