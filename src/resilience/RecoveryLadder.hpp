#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace crocco::resilience {

/// What went wrong — the ladder picks its entry rung from this.
enum class FaultClass {
    ColdSdc,          ///< guard verify found corrupted cold fab(s)
    KernelSdc,        ///< dual execution caught a corrupted stage RHS
    HealthFault,      ///< StateValidator found NaN/Inf/negative state
    RankDeath,        ///< a communicator endpoint died (RankFailure)
    CheckpointCorrupt ///< a restore source failed its CRC check
};

/// The escalation chain, cheapest rung first. Each rung is a strictly
/// bigger hammer: restore one fab in place, roll the step back, rebuild
/// from the buddy mirror, reload the disk checkpoint, give up.
enum class Rung {
    FabRestore,   ///< bitwise repair of one fab from the retained copy
    StepRollback, ///< PR 1: restore the in-step snapshot and retry
    BuddyRestore, ///< PR 6: rebuild state from the partner mirror
    DiskRestart,  ///< reload the newest verified disk checkpoint
    Abort         ///< nothing left — surface the failure
};

const char* describe(FaultClass c);
const char* describe(Rung r);

/// One escalation decision, as the ladder made it.
struct RecoveryEvent {
    int step = 0;
    FaultClass fault = FaultClass::HealthFault;
    Rung rung = Rung::StepRollback;
    bool success = false;
    std::string detail;
};

/// Append-only record of every rung the ladder tried. The soak tests
/// assert against this log (every rung exercised, every attempt resolved),
/// and evolve() surfaces it next to the health report on failure.
class RecoveryLog {
public:
    void record(int step, FaultClass fault, Rung rung, bool success,
                std::string detail = {});
    const std::vector<RecoveryEvent>& events() const { return events_; }
    /// Successful climbs of `rung` (any fault class).
    int successes(Rung rung) const;
    /// Attempts of `rung` that failed and escalated.
    int failures(Rung rung) const;
    /// Multi-line human-readable dump for diagnostics.
    std::string describeAll() const;
    void clear() { events_.clear(); }

private:
    std::vector<RecoveryEvent> events_;
};

/// Unified recovery policy (docs/resilience.md §6): every detector in the
/// solver reports its fault class here, and the ladder answers with the
/// cheapest applicable rung; a failed rung escalates to the next. The
/// ladder itself performs no repair — CroccoAmr owns the mechanisms (guard
/// restore, snapshot rollback, buddy rebuild, RestartManager) and routes
/// each ad-hoc call site through this policy so escalation order and
/// bookkeeping live in exactly one place.
///
/// dt backoff is a property of the *fault*, not the rung: a health fault
/// usually means the explicit step outran its CFL limit, so its retry
/// shrinks dt; an SDC retry replays the identical step (the flip was
/// transient) and must NOT change dt, or the repaired run would diverge
/// bitwise from the fault-free one.
class RecoveryLadder {
public:
    /// Cheapest rung applicable to a fault class: fab repair only works
    /// for localized cold corruption; a corrupted kernel output needs the
    /// whole step replayed; rank death starts at the buddy mirror.
    static Rung entryRung(FaultClass fault);

    /// Next-bigger hammer after `rung` failed for `fault`. Mostly the next
    /// chain link, with one exception: cold SDC skips StepRollback (the
    /// corruption predates the in-step snapshot, so replaying the step
    /// would replay the corruption) and goes straight to the buddy mirror.
    static Rung escalate(Rung rung, FaultClass fault);

    /// Whether a StepRollback retry of this fault class shrinks dt.
    static bool dtBackoffApplies(FaultClass fault);

    RecoveryLog& log() { return log_; }
    const RecoveryLog& log() const { return log_; }

private:
    RecoveryLog log_;
};

/// Raised when SDC is detected but the local rungs (fab restore, step
/// rollback) cannot repair it — evolve() climbs the remaining rungs
/// (buddy mirror, disk restart) exactly as it does for a rank death.
class SdcFault : public std::runtime_error {
public:
    SdcFault(int step, FaultClass fault, const std::string& what)
        : std::runtime_error(what), step_(step), fault_(fault) {}
    int step() const { return step_; }
    FaultClass fault() const { return fault_; }

private:
    int step_;
    FaultClass fault_;
};

} // namespace crocco::resilience
