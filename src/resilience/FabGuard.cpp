#include "resilience/FabGuard.hpp"

#include "resilience/Crc32.hpp"

#include <cassert>
#include <cstring>

namespace crocco::resilience {

std::uint32_t crcOfFabValidRegion(const amr::MultiFab& mf, int f) {
    const amr::Box& vb = mf.validBox(f);
    const auto a = mf.const_array(f);
    const std::size_t rowBytes =
        static_cast<std::size_t>(vb.bigEnd()[0] - vb.smallEnd()[0] + 1) *
        sizeof(amr::Real);
    std::uint32_t crc = 0;
    // Fortran order: i is contiguous, so CRC whole rows, chained in a fixed
    // (comp, k, j) sweep — the stamp is a pure function of the valid bytes.
    for (int n = 0; n < mf.nComp(); ++n)
        for (int k = vb.smallEnd()[2]; k <= vb.bigEnd()[2]; ++k)
            for (int j = vb.smallEnd()[1]; j <= vb.bigEnd()[1]; ++j) {
                const amr::Real* row = &a(vb.smallEnd()[0], j, k, n);
                crc = crc32(row, rowBytes, crc);
            }
    return crc;
}

void FabGuard::stamp(const std::vector<amr::MultiFab>& U, int finestLevel) {
    assert(finestLevel >= 0 &&
           finestLevel < static_cast<int>(U.size()));
    crcs_.assign(static_cast<std::size_t>(finestLevel) + 1, {});
    digests_.assign(static_cast<std::size_t>(finestLevel) + 1, {});
    copies_.clear();
    copies_.reserve(static_cast<std::size_t>(finestLevel) + 1);
    guardedBytes_ = 0;
    for (int lev = 0; lev <= finestLevel; ++lev) {
        const amr::MultiFab& mf = U[static_cast<std::size_t>(lev)];
        auto& crcs = crcs_[static_cast<std::size_t>(lev)];
        crcs.resize(static_cast<std::size_t>(mf.numFabs()));
        for (int f = 0; f < mf.numFabs(); ++f) {
            crcs[static_cast<std::size_t>(f)] = crcOfFabValidRegion(mf, f);
            guardedBytes_ += mf.validBox(f).numPts() * mf.nComp() *
                             static_cast<std::int64_t>(sizeof(amr::Real));
        }
        auto& digest = digests_[static_cast<std::size_t>(lev)];
        digest.resize(static_cast<std::size_t>(mf.nComp()));
        for (int n = 0; n < mf.nComp(); ++n)
            digest[static_cast<std::size_t>(n)] = mf.sum(n);
        copies_.push_back(mf); // deep copy: the fab-granular restore source
    }
    finest_ = finestLevel;
    stamped_ = true;
    ++stats_.stamps;
}

bool FabGuard::layoutMatches(const std::vector<amr::MultiFab>& U,
                             int finestLevel) const {
    if (!stamped_ || finestLevel != finest_) return false;
    for (int lev = 0; lev <= finestLevel; ++lev) {
        const amr::MultiFab& mf = U[static_cast<std::size_t>(lev)];
        const auto& crcs = crcs_[static_cast<std::size_t>(lev)];
        if (static_cast<int>(crcs.size()) != mf.numFabs()) return false;
        const amr::MultiFab& copy = copies_[static_cast<std::size_t>(lev)];
        if (copy.numFabs() != mf.numFabs() || copy.nComp() != mf.nComp())
            return false;
        for (int f = 0; f < mf.numFabs(); ++f)
            if (!(copy.validBox(f) == mf.validBox(f))) return false;
    }
    return true;
}

bool FabGuard::digestClean(const std::vector<amr::MultiFab>& U,
                           int finestLevel) {
    if (!layoutMatches(U, finestLevel)) return true; // nothing comparable
    bool clean = true;
    for (int lev = 0; lev <= finestLevel; ++lev) {
        const amr::MultiFab& mf = U[static_cast<std::size_t>(lev)];
        const auto& digest = digests_[static_cast<std::size_t>(lev)];
        for (int n = 0; n < mf.nComp(); ++n) {
            const amr::Real s = mf.sum(n);
            // Bitwise comparison: the sum is recomputed in the identical
            // deterministic order, so any difference is corruption (or an
            // exactly sum-preserving flip, which the CRC scan still sees).
            if (std::memcmp(&s, &digest[static_cast<std::size_t>(n)],
                            sizeof s) != 0) {
                clean = false;
                ++stats_.digestMismatches;
                break;
            }
        }
    }
    return clean;
}

std::vector<GuardFinding> FabGuard::verify(const std::vector<amr::MultiFab>& U,
                                           int finestLevel) {
    std::vector<GuardFinding> bad;
    if (!layoutMatches(U, finestLevel)) return bad;
    ++stats_.verifies;
    for (int lev = 0; lev <= finestLevel; ++lev) {
        const amr::MultiFab& mf = U[static_cast<std::size_t>(lev)];
        const auto& crcs = crcs_[static_cast<std::size_t>(lev)];
        for (int f = 0; f < mf.numFabs(); ++f) {
            if (crcOfFabValidRegion(mf, f) != crcs[static_cast<std::size_t>(f)]) {
                bad.push_back({lev, f});
                ++stats_.crcMismatches;
            }
        }
    }
    return bad;
}

bool FabGuard::restoreFab(std::vector<amr::MultiFab>& U, int level, int fab) {
    if (!stamped_ || level < 0 || level > finest_) return false;
    amr::MultiFab& copy = copies_[static_cast<std::size_t>(level)];
    if (fab < 0 || fab >= copy.numFabs()) return false;
    // Never trust the restore source: the copy sat cold at least as long as
    // the state it is about to repair.
    if (crcOfFabValidRegion(copy, fab) !=
        crcs_[static_cast<std::size_t>(level)][static_cast<std::size_t>(fab)])
        return false;
    amr::MultiFab& mf = U[static_cast<std::size_t>(level)];
    const amr::Box& vb = mf.validBox(fab);
    mf.fab(fab).copyFrom(copy.fab(fab), vb, 0, 0, mf.nComp());
    ++stats_.fabRestores;
    return true;
}

void FabGuard::invalidate() {
    crcs_.clear();
    digests_.clear();
    copies_.clear();
    guardedBytes_ = 0;
    finest_ = -1;
    stamped_ = false;
}

int FabGuard::sampledFab(int step, int stage, int level, int numFabs) {
    if (numFabs <= 0) return 0;
    // Fixed rotation: consecutive (step, stage) pairs walk distinct fabs so
    // repeated sampling eventually covers the level.
    const int idx = step * 3 + stage + 5 * level;
    return ((idx % numFabs) + numFabs) % numFabs;
}

bool FabGuard::bitwiseEqual(const amr::FArrayBox& a, const amr::FArrayBox& b,
                            const amr::Box& region, int ncomp) {
    const auto va = a.const_array();
    const auto vb = b.const_array();
    const std::size_t rowBytes =
        static_cast<std::size_t>(region.bigEnd()[0] - region.smallEnd()[0] + 1) *
        sizeof(amr::Real);
    for (int n = 0; n < ncomp; ++n)
        for (int k = region.smallEnd()[2]; k <= region.bigEnd()[2]; ++k)
            for (int j = region.smallEnd()[1]; j <= region.bigEnd()[1]; ++j) {
                if (std::memcmp(&va(region.smallEnd()[0], j, k, n),
                                &vb(region.smallEnd()[0], j, k, n), rowBytes) != 0)
                    return false;
            }
    return true;
}

void FabGuard::corruptRetained(int level, int fab) {
    if (!stamped_ || level < 0 || level > finest_) return;
    amr::MultiFab& copy = copies_[static_cast<std::size_t>(level)];
    if (fab < 0 || fab >= copy.numFabs()) return;
    const amr::Box& vb = copy.validBox(fab);
    amr::Real& v = copy.fab(fab)(vb.smallEnd(), 0);
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof u);
    u ^= 0x2ull; // one mantissa bit: silent, finite
    std::memcpy(&v, &u, sizeof u);
}

} // namespace crocco::resilience
