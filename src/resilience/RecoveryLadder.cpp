#include "resilience/RecoveryLadder.hpp"

#include <sstream>

namespace crocco::resilience {

const char* describe(FaultClass c) {
    switch (c) {
    case FaultClass::ColdSdc: return "cold-state SDC";
    case FaultClass::KernelSdc: return "kernel-output SDC";
    case FaultClass::HealthFault: return "health fault";
    case FaultClass::RankDeath: return "rank death";
    case FaultClass::CheckpointCorrupt: return "corrupt restore source";
    }
    return "?";
}

const char* describe(Rung r) {
    switch (r) {
    case Rung::FabRestore: return "fab restore";
    case Rung::StepRollback: return "step rollback";
    case Rung::BuddyRestore: return "buddy restore";
    case Rung::DiskRestart: return "disk restart";
    case Rung::Abort: return "abort";
    }
    return "?";
}

void RecoveryLog::record(int step, FaultClass fault, Rung rung, bool success,
                         std::string detail) {
    events_.push_back({step, fault, rung, success, std::move(detail)});
}

int RecoveryLog::successes(Rung rung) const {
    int n = 0;
    for (const RecoveryEvent& e : events_)
        if (e.rung == rung && e.success) ++n;
    return n;
}

int RecoveryLog::failures(Rung rung) const {
    int n = 0;
    for (const RecoveryEvent& e : events_)
        if (e.rung == rung && !e.success) ++n;
    return n;
}

std::string RecoveryLog::describeAll() const {
    std::ostringstream ss;
    for (const RecoveryEvent& e : events_) {
        ss << "step " << e.step << ": " << describe(e.fault) << " -> "
           << describe(e.rung) << (e.success ? " ok" : " FAILED");
        if (!e.detail.empty()) ss << " (" << e.detail << ")";
        ss << '\n';
    }
    return ss.str();
}

Rung RecoveryLadder::entryRung(FaultClass fault) {
    switch (fault) {
    case FaultClass::ColdSdc:
        // Localized by the CRC scan; the state has not been consumed yet,
        // so one fab restored bitwise repairs the run in place.
        return Rung::FabRestore;
    case FaultClass::KernelSdc:
    case FaultClass::HealthFault:
        // The step's outputs are suspect wholesale: replay it.
        return Rung::StepRollback;
    case FaultClass::RankDeath:
        // Local repair is meaningless — the data is gone with the rank.
        return Rung::BuddyRestore;
    case FaultClass::CheckpointCorrupt:
        // The mirror/copy failed its CRC: only the disk dump is left.
        return Rung::DiskRestart;
    }
    return Rung::Abort;
}

Rung RecoveryLadder::escalate(Rung rung, FaultClass fault) {
    switch (rung) {
    case Rung::FabRestore:
        // The in-step snapshot was taken from the same already-corrupt
        // state a cold-SDC fab restore just failed to repair — replaying
        // the step replays the corruption, so skip straight past it.
        return fault == FaultClass::ColdSdc ? Rung::BuddyRestore
                                            : Rung::StepRollback;
    case Rung::StepRollback: return Rung::BuddyRestore;
    case Rung::BuddyRestore: return Rung::DiskRestart;
    case Rung::DiskRestart: return Rung::Abort;
    case Rung::Abort: return Rung::Abort;
    }
    return Rung::Abort;
}

bool RecoveryLadder::dtBackoffApplies(FaultClass fault) {
    return fault == FaultClass::HealthFault;
}

} // namespace crocco::resilience
