#pragma once

#include "amr/MultiFab.hpp"

#include <cstdint>
#include <vector>

namespace crocco::resilience {

/// In-memory buddy checkpoint (docs/resilience.md §5): each rank mirrors
/// its partner's FArrayBoxes after a periodic snapshot, so a single rank
/// death is recoverable from a surviving rank's memory at interconnect
/// bandwidth instead of a full disk restore at filesystem bandwidth — the
/// diskless-checkpointing scheme exascale AMR runtimes assume.
///
/// The partner ring is `partner(r) = (r + 1) % nranks`: rank r's data is
/// replicated on its successor, so any *single* failure leaves every
/// rank's state available somewhere (the dead rank's copy lives on its
/// partner; the dead rank held only its predecessor's replica, whose
/// primary survives). A double fault — the replica lost too, modeled by
/// dropReplicaOf() — defeats the buddy scheme and falls back to disk.
///
/// In this in-process reproduction every rank's fabs share one address
/// space, so store() deep-copies the hierarchy once and records the
/// rank -> partner mirror traffic in the SimComm log; what matters for the
/// paper's model is the traffic and the recovery semantics, not physical
/// placement.
class BuddyCheckpoint {
public:
    static int partnerOf(int rank, int nranks) {
        return nranks > 0 ? (rank + 1) % nranks : 0;
    }

    /// Snapshot levels 0..finestLevel of the conserved state plus the
    /// restart metadata, and record each rank's valid-region bytes as a
    /// rank -> partner "BuddyCheckpoint" message (nullptr comm records
    /// nothing). Replaces any previous snapshot; clears dropReplicaOf marks.
    void store(const std::vector<amr::MultiFab>& levels, int finestLevel,
               int step, double time, parallel::SimComm* comm);

    bool valid() const { return valid_; }
    int step() const { return step_; }
    double time() const { return time_; }
    int finestLevel() const { return finest_; }
    /// Communicator size when the snapshot was taken (the pre-death rank
    /// numbering its DistributionMappings use).
    int nranks() const { return nranks_; }
    /// Valid-region bytes mirrored by the last store() (all ranks).
    std::int64_t mirroredBytes() const { return mirroredBytes_; }

    const amr::MultiFab& level(int lev) const {
        return levels_[static_cast<std::size_t>(lev)];
    }

    /// Can `deadRank`'s state be rebuilt from this snapshot? True when a
    /// snapshot exists, a partner distinct from the dead rank holds the
    /// replica, and that replica was not itself lost (dropReplicaOf).
    /// Whether the partner is *alive* is the caller's check — liveness
    /// lives in SimComm, not here.
    bool canRecover(int deadRank) const;

    /// Recompute every mirrored fab's CRC32 and compare against the stamps
    /// taken at store() time. Restores MUST call this before any mirror
    /// byte overwrites live state: a mirror that sat in partner memory for
    /// thousands of steps is exactly the long-idle state SDC hits, and a
    /// corrupted mirror that is trusted turns one recoverable fault into a
    /// silently wrong run. False = corrupt; fall through to the disk path.
    bool verifyMirror() const;

    /// SDC injection hook for tests: flip one byte of the mirrored copy of
    /// (level, fab), so verifyMirror() fails and recovery has to fall back
    /// to RestartManager.
    void corruptMirror(int lev, int fab);

    /// Discard the snapshot (e.g. after it has been consumed by a
    /// recovery: its rank numbering predates the shrink).
    void invalidate();

    /// Double-fault injection hook: the replica of `rank`'s data is lost
    /// too (partner memory corrupted), so canRecover(rank) goes false and
    /// recovery must fall back to the disk restart path.
    void dropReplicaOf(int rank);

private:
    std::vector<amr::MultiFab> levels_;
    std::vector<std::vector<std::uint32_t>> crcs_; ///< [level][fab], at store()
    std::vector<int> droppedReplicas_;
    std::int64_t mirroredBytes_ = 0;
    double time_ = 0.0;
    int step_ = 0;
    int finest_ = -1;
    int nranks_ = 0;
    bool valid_ = false;
};

} // namespace crocco::resilience
