#include "resilience/FaultInjector.hpp"

#include "core/State.hpp"

#include <cmath>
#include <limits>

namespace crocco::resilience {

FaultInjector::FaultInjector(std::uint64_t seed) : rng_(seed) {}

void FaultInjector::armCellCorruption(int step, Corruption kind) {
    cellArms_.push_back({step, kind, false, false});
}

void FaultInjector::armPersistentCorruption(int step, Corruption kind) {
    cellArms_.push_back({step, kind, true, false});
}

void FaultInjector::armDtInflation(int step, double factor) {
    dtArms_.push_back({step, factor, false});
}

double FaultInjector::perturbDt(int step, double dt) {
    for (DtArm& a : dtArms_) {
        if (a.spent || a.step != step) continue;
        a.spent = true;
        ++fired_;
        dt *= a.factor;
    }
    return dt;
}

bool FaultInjector::corruptState(int step, std::vector<amr::MultiFab>& U,
                                 int finestLevel) {
    bool any = false;
    for (CellArm& a : cellArms_) {
        if (a.spent || a.step != step) continue;
        if (!a.persistent) a.spent = true;
        // Pick a target uniformly: level, fab, valid cell.
        auto pick = [&](int lo, int hi) {
            return std::uniform_int_distribution<int>(lo, hi)(rng_);
        };
        const int lev = pick(0, finestLevel);
        amr::MultiFab& mf = U[static_cast<std::size_t>(lev)];
        const int fab = pick(0, mf.numFabs() - 1);
        const amr::Box& b = mf.validBox(fab);
        const int i = pick(b.smallEnd(0), b.bigEnd(0));
        const int j = pick(b.smallEnd(1), b.bigEnd(1));
        const int k = pick(b.smallEnd(2), b.bigEnd(2));
        auto u = mf.array(fab);
        switch (a.kind) {
            case Corruption::QuietNaN:
                u(i, j, k, pick(0, core::NCONS - 1)) =
                    std::numeric_limits<amr::Real>::quiet_NaN();
                break;
            case Corruption::Infinity:
                u(i, j, k, pick(0, core::NCONS - 1)) =
                    std::numeric_limits<amr::Real>::infinity();
                break;
            case Corruption::NegativeDensity:
                u(i, j, k, core::URHO) =
                    -std::abs(u(i, j, k, core::URHO)) - 1.0;
                break;
        }
        ++fired_;
        any = true;
    }
    return any;
}

} // namespace crocco::resilience
