// crocco-analyze:allow-file(R1): restart files are written/read as raw fab
// payload bytes; the CRC32 stamp covers exactly that raw span.
#include "resilience/RestartManager.hpp"

#include "resilience/Crc32.hpp"
#include "resilience/Health.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace crocco::resilience {

namespace fs = std::filesystem;

namespace {
constexpr const char* kPrefix = "chk";
} // namespace

RestartManager::RestartManager(std::string root, int keepLast)
    : root_(std::move(root)), keepLast_(keepLast) {
    if (keepLast_ < 1)
        throw std::invalid_argument("RestartManager: keepLast must be >= 1");
    fs::create_directories(root_);
}

std::string RestartManager::dirFor(int step) const {
    std::ostringstream os;
    os << root_ << '/' << kPrefix;
    const std::string s = std::to_string(step);
    for (std::size_t i = s.size(); i < 6; ++i) os << '0';
    os << s;
    return os.str();
}

int RestartManager::stepOf(const std::string& dir) {
    const std::string name = fs::path(dir).filename().string();
    if (name.rfind(kPrefix, 0) != 0) return -1;
    const std::string digits = name.substr(3);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
        return -1;
    return std::stoi(digits);
}

std::string RestartManager::write(int step, const CheckpointFn& writer) {
    const std::string dir = dirFor(step);
    writer(dir);
    // Prune: keep only the newest keepLast_ checkpoints.
    auto dirs = available();
    for (std::size_t i = static_cast<std::size_t>(keepLast_); i < dirs.size();
         ++i) {
        std::error_code ec;
        fs::remove_all(dirs[i], ec); // best effort; stale dirs are harmless
    }
    return dir;
}

std::vector<std::string> RestartManager::available() const {
    std::vector<std::string> dirs;
    std::error_code ec;
    for (const auto& e : fs::directory_iterator(root_, ec)) {
        if (!e.is_directory()) continue;
        if (stepOf(e.path().string()) >= 0) dirs.push_back(e.path().string());
    }
    std::sort(dirs.begin(), dirs.end(), [](const auto& a, const auto& b) {
        return stepOf(a) > stepOf(b);
    });
    return dirs;
}

bool RestartManager::verify(const std::string& dir, std::string* why) {
    auto fail = [&](const std::string& reason) {
        if (why) *why = dir + ": " + reason;
        return false;
    };
    std::ifstream hdr(dir + "/header.txt");
    if (!hdr) return fail("cannot open header.txt");
    std::string magic;
    int version = 0;
    hdr >> magic >> version;
    if (magic != "crocco-checkpoint" || version < 1 || version > 2)
        return fail("unrecognized header magic/version");
    double time = 0;
    int step = 0, finest = 0;
    hdr >> time >> step >> finest;
    if (!hdr || finest < 0) return fail("malformed header");
    if (version < 2) return true; // v1 has no checksums to verify against
    for (int lev = 0; lev <= finest; ++lev) {
        int nboxes = 0;
        std::uint32_t crc = 0;
        std::uint64_t nbytes = 0;
        hdr >> nboxes >> crc >> nbytes;
        if (!hdr || nboxes < 0)
            return fail("malformed level " + std::to_string(lev) + " record");
        for (int i = 0; i < nboxes; ++i) {
            int lo0, lo1, lo2, hi0, hi1, hi2, owner;
            hdr >> lo0 >> lo1 >> lo2 >> hi0 >> hi1 >> hi2 >> owner;
        }
        if (!hdr)
            return fail("malformed box list at level " + std::to_string(lev));
        const std::string path = dir + "/level" + std::to_string(lev) + ".bin";
        std::ifstream bin(path, std::ios::binary);
        if (!bin) return fail("missing " + path);
        std::vector<char> buf((std::istreambuf_iterator<char>(bin)),
                              std::istreambuf_iterator<char>());
        if (buf.size() != nbytes)
            return fail(path + " truncated: expected " +
                        std::to_string(nbytes) + " B, found " +
                        std::to_string(buf.size()) + " B");
        if (crc32(buf.data(), buf.size()) != crc)
            return fail("CRC32 mismatch in " + path);
    }
    return true;
}

std::string RestartManager::restoreLatest(const CheckpointFn& reader) const {
    std::string failures;
    for (const std::string& dir : available()) {
        std::string why;
        if (!verify(dir, &why)) {
            failures += "\n  " + why;
            continue;
        }
        try {
            reader(dir);
            return dir;
        } catch (const std::exception& e) {
            failures += "\n  " + dir + ": " + e.what();
        }
    }
    throw std::runtime_error("RestartManager: no restorable checkpoint under " +
                             root_ + (failures.empty() ? " (none found)"
                                                       : failures));
}

} // namespace crocco::resilience
