#pragma once

#include "amr/MultiFab.hpp"
#include "resilience/FaultRng.hpp"
#include "resilience/Health.hpp"

#include <cstdint>
#include <random>
#include <vector>

namespace crocco::resilience {

/// Deterministic, seeded fault injection for exercising the solver's
/// rollback/retry and checkpoint-recovery paths in tests. Faults are
/// *armed* for a specific step; the solver driver calls the hooks at fixed
/// points of step(), so a given (seed, schedule) reproduces the same fault
/// in the same cell every run.
class FaultInjector {
public:
    enum class Corruption {
        QuietNaN,       ///< overwrite one component with NaN
        Infinity,       ///< overwrite one component with +Inf
        NegativeDensity ///< force rho to a negative value
    };

    explicit FaultInjector(std::uint64_t seed = 0xC0FFEEull);
    /// Substream constructor: one master FaultRng seeds every injector in
    /// the fault stack independently, so arming this one never shifts the
    /// comm or SDC injectors' decision streams.
    explicit FaultInjector(const FaultRng& rng)
        : FaultInjector(rng.seedFor(FaultRng::kCellStream)) {}

    /// Arm a one-shot corruption of one pseudo-randomly chosen cell,
    /// applied after the RK3 advance of step `step` (so the health check
    /// sees it). Consumed on first firing — a rollback/retry of the step
    /// runs clean, which is how transient (soft-error-like) faults behave.
    void armCellCorruption(int step, Corruption kind = Corruption::QuietNaN);

    /// Arm a corruption that re-fires on *every* attempt of step `step`
    /// (including after a checkpoint restore replays it). Models a
    /// persistent failure and forces SolverDivergence through the guard.
    void armPersistentCorruption(int step,
                                 Corruption kind = Corruption::QuietNaN);

    /// Arm a one-shot dt inflation at step `step`: the computed stable dt
    /// is multiplied by `factor`, driving the explicit RK3 past its CFL
    /// limit so the shock capture blows up and the guard's dt backoff has
    /// to walk it back down.
    void armDtInflation(int step, double factor);

    /// Hook: called once per step() after ComputeDt. Returns the possibly
    /// inflated dt and consumes the armed fault.
    double perturbDt(int step, double dt);

    /// Hook: called after each RK3 advance attempt. Corrupts the armed
    /// cell(s) in place; returns true if anything fired.
    bool corruptState(int step, std::vector<amr::MultiFab>& U,
                      int finestLevel);

    /// Total number of faults that have fired (cell corruptions + dt
    /// inflations).
    int faultsFired() const { return fired_; }

private:
    struct CellArm {
        int step;
        Corruption kind;
        bool persistent;
        bool spent;
    };
    struct DtArm {
        int step;
        double factor;
        bool spent;
    };

    std::mt19937_64 rng_;
    std::vector<CellArm> cellArms_;
    std::vector<DtArm> dtArms_;
    int fired_ = 0;
};

} // namespace crocco::resilience
