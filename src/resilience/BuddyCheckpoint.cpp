#include "resilience/BuddyCheckpoint.hpp"

#include "resilience/FabGuard.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace crocco::resilience {

void BuddyCheckpoint::store(const std::vector<amr::MultiFab>& levels,
                            int finestLevel, int step, double time,
                            parallel::SimComm* comm) {
    assert(finestLevel >= 0 &&
           finestLevel < static_cast<int>(levels.size()));
    levels_.clear();
    levels_.reserve(static_cast<std::size_t>(finestLevel) + 1);
    crcs_.assign(static_cast<std::size_t>(finestLevel) + 1, {});
    mirroredBytes_ = 0;
    const int nranks = comm ? comm->size() : 1;
    for (int lev = 0; lev <= finestLevel; ++lev) {
        const amr::MultiFab& src = levels[static_cast<std::size_t>(lev)];
        levels_.push_back(src); // deep copy (throws if an exchange is in flight)
        // Stamp the mirror as stored: restores verify against these before
        // trusting a byte of it (FabGuard custody rule, analyze A6).
        auto& crcs = crcs_[static_cast<std::size_t>(lev)];
        crcs.resize(static_cast<std::size_t>(src.numFabs()));
        for (int f = 0; f < src.numFabs(); ++f)
            crcs[static_cast<std::size_t>(f)] =
                crcOfFabValidRegion(levels_.back(), f);
        if (!comm) continue;
        // Each rank streams its valid cells to its partner; ghost layers
        // are not mirrored (a restore refills them, like readCheckpoint).
        for (int f = 0; f < src.numFabs(); ++f) {
            const int owner = src.distributionMap()[f];
            const int partner = partnerOf(owner, nranks);
            if (partner == owner) continue;
            const std::int64_t bytes =
                src.validBox(f).numPts() * src.nComp() *
                static_cast<std::int64_t>(sizeof(amr::Real));
            comm->recordP2P(owner, partner, bytes, "BuddyCheckpoint");
            mirroredBytes_ += bytes;
        }
    }
    droppedReplicas_.clear();
    step_ = step;
    time_ = time;
    finest_ = finestLevel;
    nranks_ = nranks;
    valid_ = true;
}

bool BuddyCheckpoint::canRecover(int deadRank) const {
    if (!valid_) return false;
    if (deadRank < 0 || deadRank >= nranks_) return false;
    if (partnerOf(deadRank, nranks_) == deadRank) return false; // 1 rank: no buddy
    return std::find(droppedReplicas_.begin(), droppedReplicas_.end(),
                     deadRank) == droppedReplicas_.end();
}

bool BuddyCheckpoint::verifyMirror() const {
    if (!valid_) return false;
    for (int lev = 0; lev <= finest_; ++lev) {
        const amr::MultiFab& mf = levels_[static_cast<std::size_t>(lev)];
        const auto& crcs = crcs_[static_cast<std::size_t>(lev)];
        for (int f = 0; f < mf.numFabs(); ++f)
            if (crcOfFabValidRegion(mf, f) != crcs[static_cast<std::size_t>(f)])
                return false;
    }
    return true;
}

void BuddyCheckpoint::corruptMirror(int lev, int fab) {
    if (!valid_ || lev < 0 || lev > finest_) return;
    amr::MultiFab& mf = levels_[static_cast<std::size_t>(lev)];
    if (fab < 0 || fab >= mf.numFabs()) return;
    amr::Real& v = mf.fab(fab)(mf.validBox(fab).smallEnd(), 0);
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof u);
    u ^= 0xFFull << 8; // one flipped byte, mantissa-only: stays finite
    std::memcpy(&v, &u, sizeof u);
}

void BuddyCheckpoint::invalidate() {
    levels_.clear();
    crcs_.clear();
    droppedReplicas_.clear();
    mirroredBytes_ = 0;
    finest_ = -1;
    nranks_ = 0;
    valid_ = false;
}

void BuddyCheckpoint::dropReplicaOf(int rank) {
    droppedReplicas_.push_back(rank);
}

} // namespace crocco::resilience
