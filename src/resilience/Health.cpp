#include "resilience/Health.hpp"

#include <sstream>

namespace crocco::resilience {

const char* toString(FaultKind k) {
    switch (k) {
        case FaultKind::NotANumber: return "NaN";
        case FaultKind::Infinite: return "Inf";
        case FaultKind::NegativeDensity: return "negative-density";
        case FaultKind::NegativePressure: return "negative-pressure";
    }
    return "unknown";
}

void HealthReport::merge(const HealthReport& other, int maxReported) {
    cellsScanned += other.cellsScanned;
    faultCount += other.faultCount;
    for (const CellFault& f : other.faults) {
        if (static_cast<int>(faults.size()) >= maxReported) break;
        faults.push_back(f);
    }
}

std::string HealthReport::describe() const {
    std::ostringstream os;
    if (healthy()) {
        os << "healthy (" << cellsScanned << " cells scanned)";
        return os.str();
    }
    os << faultCount << " corrupt value(s) in " << cellsScanned
       << " cells scanned";
    for (const CellFault& f : faults) {
        os << "; " << toString(f.kind) << " at level " << f.level << " fab "
           << f.fabIndex << " cell (" << f.cell[0] << ',' << f.cell[1] << ','
           << f.cell[2] << ") comp " << f.comp << " value " << f.value;
    }
    if (faultCount > static_cast<std::int64_t>(faults.size()))
        os << "; ... (" << faultCount - static_cast<std::int64_t>(faults.size())
           << " more not shown)";
    return os.str();
}

namespace {
std::string divergenceMessage(int step, double dt, const HealthReport& report) {
    std::ostringstream os;
    os << "solver diverged at step " << step << " (last attempted dt " << dt
       << "): " << report.describe();
    return os.str();
}
} // namespace

SolverDivergence::SolverDivergence(int step, double dt, HealthReport report)
    : std::runtime_error(divergenceMessage(step, dt, report)), step_(step),
      dt_(dt), report_(std::move(report)) {}

} // namespace crocco::resilience
