#include "resilience/StateValidator.hpp"

#include "gpu/Gpu.hpp"

#include <cmath>

namespace crocco::resilience {

using amr::IntVect;
using core::NCONS;
using core::UEDEN;
using core::UMX;
using core::UMY;
using core::UMZ;
using core::URHO;

HealthReport validateState(const amr::MultiFab& U, const core::GasModel& gas,
                           int level, int maxReported) {
    HealthReport rep;
    auto note = [&](int fab, int i, int j, int k, int comp, FaultKind kind,
                    double value) {
        ++rep.faultCount;
        if (static_cast<int>(rep.faults.size()) < maxReported)
            rep.faults.push_back(
                {level, fab, IntVect{i, j, k}, comp, kind, value});
    };
    for (int f = 0; f < U.numFabs(); ++f) {
        auto a = U.const_array(f);
        const amr::Box& b = U.validBox(f);
        rep.cellsScanned += b.numPts();
        gpu::ParallelFor(b, [&](int i, int j, int k) {
            // Fused scan: finiteness of every component, then the decoded
            // thermodynamic state — one sweep through memory per cell.
            bool finite = true;
            for (int n = 0; n < NCONS; ++n) {
                const double v = a(i, j, k, n);
                if (std::isnan(v)) {
                    note(f, i, j, k, n, FaultKind::NotANumber, v);
                    finite = false;
                } else if (std::isinf(v)) {
                    note(f, i, j, k, n, FaultKind::Infinite, v);
                    finite = false;
                }
            }
            if (!finite) return;
            const double rho = a(i, j, k, URHO);
            if (rho <= 0.0) {
                note(f, i, j, k, URHO, FaultKind::NegativeDensity, rho);
                return; // pressure decode would divide by rho
            }
            const double rinv = 1.0 / rho;
            const double p = gas.pressure(rho, a(i, j, k, UMX) * rinv,
                                          a(i, j, k, UMY) * rinv,
                                          a(i, j, k, UMZ) * rinv,
                                          a(i, j, k, UEDEN));
            if (p <= 0.0)
                note(f, i, j, k, UEDEN, FaultKind::NegativePressure, p);
        });
    }
    return rep;
}

HealthReport validateHierarchy(const std::vector<amr::MultiFab>& U,
                               int finestLevel, const core::GasModel& gas,
                               int maxReported) {
    HealthReport rep;
    for (int lev = 0; lev <= finestLevel; ++lev)
        rep.merge(validateState(U[static_cast<std::size_t>(lev)], gas, lev,
                                maxReported),
                  maxReported);
    return rep;
}

} // namespace crocco::resilience
