#include "resilience/StateValidator.hpp"

#include "amr/Box.hpp"
#include "gpu/Gpu.hpp"

#include <cmath>

namespace crocco::resilience {

using amr::IntVect;
using core::NCONS;
using core::UEDEN;
using core::UMX;
using core::UMY;
using core::UMZ;
using core::URHO;

HealthReport validateState(const amr::MultiFab& U, const core::GasModel& gas,
                           int level, int maxReported) {
    HealthReport rep;
    auto note = [&](int fab, int i, int j, int k, int comp, FaultKind kind,
                    double value) {
        ++rep.faultCount;
        if (static_cast<int>(rep.faults.size()) < maxReported)
            rep.faults.push_back(
                {level, fab, IntVect{i, j, k}, comp, kind, value});
    };
    for (int f = 0; f < U.numFabs(); ++f) {
        auto a = U.const_array(f);
        const amr::Box& b = U.validBox(f);
        rep.cellsScanned += b.numPts();
        // Phase 1 — parallel prescreen. Pure per-cell predicate through the
        // reduction (no captured mutable state, so threads cannot race on
        // the report): 1.0 the moment any component is non-finite or the
        // decoded state is unphysical. Healthy fabs — the common case —
        // finish here, in one fused sweep through memory.
        const double bad = gpu::ReduceMax(b, [&](int i, int j, int k) {
            for (int n = 0; n < NCONS; ++n) {
                const double v = a(i, j, k, n);
                if (std::isnan(v) || std::isinf(v)) return 1.0;
            }
            const double rho = a(i, j, k, URHO);
            if (rho <= 0.0) return 1.0;
            const double rinv = 1.0 / rho;
            const double p = gas.pressure(rho, a(i, j, k, UMX) * rinv,
                                          a(i, j, k, UMY) * rinv,
                                          a(i, j, k, UMZ) * rinv,
                                          a(i, j, k, UEDEN));
            return p <= 0.0 ? 1.0 : 0.0;
        });
        if (bad <= 0.0) continue;
        // Phase 2 — serial report pass, only over fabs the prescreen
        // flagged. Runs in deterministic cell order, so faultCount and the
        // first-maxReported fault list are reproducible across thread
        // counts (the old single-pass version mutated the report from
        // inside the launch and raced under GPU_NUM_THREADS > 1).
        amr::forEachCell(b, [&](int i, int j, int k) {
            bool finite = true;
            for (int n = 0; n < NCONS; ++n) {
                const double v = a(i, j, k, n);
                if (std::isnan(v)) {
                    note(f, i, j, k, n, FaultKind::NotANumber, v);
                    finite = false;
                } else if (std::isinf(v)) {
                    note(f, i, j, k, n, FaultKind::Infinite, v);
                    finite = false;
                }
            }
            if (!finite) return;
            const double rho = a(i, j, k, URHO);
            if (rho <= 0.0) {
                note(f, i, j, k, URHO, FaultKind::NegativeDensity, rho);
                return; // pressure decode would divide by rho
            }
            const double rinv = 1.0 / rho;
            const double p = gas.pressure(rho, a(i, j, k, UMX) * rinv,
                                          a(i, j, k, UMY) * rinv,
                                          a(i, j, k, UMZ) * rinv,
                                          a(i, j, k, UEDEN));
            if (p <= 0.0)
                note(f, i, j, k, UEDEN, FaultKind::NegativePressure, p);
        });
    }
    return rep;
}

HealthReport validateHierarchy(const std::vector<amr::MultiFab>& U,
                               int finestLevel, const core::GasModel& gas,
                               int maxReported) {
    HealthReport rep;
    for (int lev = 0; lev <= finestLevel; ++lev)
        rep.merge(validateState(U[static_cast<std::size_t>(lev)], gas, lev,
                                maxReported),
                  maxReported);
    return rep;
}

} // namespace crocco::resilience
