#pragma once

#include <cstddef>
#include <cstdint>

namespace crocco::resilience {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over a byte range. Used to
/// protect checkpoint level files against silent corruption (bit rot,
/// truncated writes). Chainable: pass a previous result as `seed` to extend
/// a checksum across buffers.
std::uint32_t crc32(const void* data, std::size_t nbytes,
                    std::uint32_t seed = 0);

} // namespace crocco::resilience
