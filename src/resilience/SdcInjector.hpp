#pragma once

#include "amr/MultiFab.hpp"
#include "resilience/FaultRng.hpp"

#include <cstdint>
#include <random>
#include <vector>

namespace crocco::resilience {

/// Seeded silent-data-corruption injector: flips single bits in MultiFab
/// payloads (cold state at rest between steps) and in RK3 stage kernel
/// outputs, the way DRAM/register upsets hit a long GPU campaign. Follows
/// the CommFaults conventions: faults are armed one-shots, a per-step
/// schedule, or rate-driven (per-fab Bernoulli), and a disabled injector
/// consumes no randomness, so enabling it never shifts the decision
/// streams of the other injectors (see FaultRng).
///
/// The injector only flips; detection and repair are FabGuard's and the
/// RecoveryLadder's business. Cold flips land in the *valid* region, the
/// state FabGuard stamps; ghost flips model upsets in unguarded scratch
/// (refilled before use, so they are the harmless-undetected category the
/// SDC bench counts).
class SdcInjector {
public:
    explicit SdcInjector(std::uint64_t seed = 0x5DC0DE10ull);
    /// Substream constructor: draws the seed from the unified fault RNG so
    /// this injector's decisions are independent of the others'.
    explicit SdcInjector(const FaultRng& rng)
        : SdcInjector(rng.seedFor(FaultRng::kSdcStream)) {}

    /// Master switch (default off): when disabled every hook returns
    /// immediately without consuming randomness.
    void setEnabled(bool e) { enabled_ = e; }
    bool enabled() const { return enabled_; }

    /// Per-fab Bernoulli probability that one cold bit flip hits the fab
    /// at the start of a step (one uniform draw per fab per step while
    /// enabled and the rate is > 0).
    void setColdRate(double rate);
    double coldRate() const { return coldRate_; }

    /// Per-step schedule: starting at `firstStep`, every `period` steps one
    /// cold flip hits a pseudo-randomly chosen fab of level 0.
    void schedule(int firstStep, int period);

    /// Arm a one-shot cold flip into fab `fab` of `level` at the start of
    /// step `step` (valid region — guarded state).
    void armColdFlip(int step, int level, int fab);

    /// Arm a one-shot ghost-region flip (unguarded state; refilled before
    /// the next stage consumes it).
    void armGhostFlip(int step, int level, int fab);

    /// Arm a one-shot flip into the stage-`stage` RHS of fab `fab` on
    /// `level` at step `step` — a corrupted kernel output, the case
    /// FabGuard's sampled dual execution exists to catch.
    void armStageFlip(int step, int stage, int level, int fab);

    struct Stats {
        std::int64_t decisions = 0;  ///< Bernoulli draws consumed
        std::int64_t coldFlips = 0;  ///< flips into guarded (valid) state
        std::int64_t ghostFlips = 0; ///< flips into unguarded ghost cells
        std::int64_t stageFlips = 0; ///< flips into stage kernel outputs
        std::int64_t fired() const { return coldFlips + ghostFlips + stageFlips; }
    };
    const Stats& stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

    /// Hook: start of step, before the FabGuard verify — upsets that hit
    /// resident state while it sat cold since the last stamp. Returns true
    /// if anything fired.
    bool corruptCold(int step, std::vector<amr::MultiFab>& U, int finestLevel);

    /// Hook: after the stage RHS is computed, before the update consumes
    /// it. Returns true if a flip fired into `dU`.
    bool corruptStage(int step, int stage, int level, amr::MultiFab& dU);

private:
    struct ColdArm {
        int step;
        int level;
        int fab;
        bool ghost;
        bool spent;
    };
    struct StageArm {
        int step;
        int stage;
        int level;
        int fab;
        bool spent;
    };

    void flipValidBit(amr::MultiFab& mf, int fab);
    void flipGhostBit(amr::MultiFab& mf, int fab);

    std::mt19937_64 rng_;
    double coldRate_ = 0.0;
    int schedFirst_ = -1;
    int schedPeriod_ = 0;
    bool enabled_ = false;
    std::vector<ColdArm> coldArms_;
    std::vector<StageArm> stageArms_;
    Stats stats_;
};

} // namespace crocco::resilience
