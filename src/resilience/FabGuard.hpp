#pragma once

#include "amr/MultiFab.hpp"

#include <cstdint>
#include <vector>

namespace crocco::resilience {

/// Deck-facing SDC knobs (resilience.sdc_* keys). All default off: with the
/// guard disabled the solver takes no stamps, runs no verifies and no dual
/// executions, and its output stream is byte-identical to pre-SDC builds.
struct SdcConfig {
    /// Master switch for FabGuard stamping/verification and the
    /// fab-granular rung of the recovery ladder.
    bool guard = false;
    /// Steps between cold-state verifies (ABFT digest screen + CRC scan).
    /// Flips that land in a window with no verify are absorbed into the
    /// trajectory — the detection-latency/overhead trade the SDC bench
    /// sweeps. 1 = verify every step (full coverage of at-rest flips).
    int interval = 10;
    /// Dual-execution cadence: every `sample` steps, re-run one sampled fab
    /// per RK3 stage per level and bitwise-compare the RHS. 0 = off.
    int sample = 0;
};

/// One corrupted fab localized by a verify pass.
struct GuardFinding {
    int level = 0;
    int fab = 0;
};

/// CRC32 of one fab's *valid* region, swept in a fixed (comp, k, j, row)
/// order — the stamp primitive shared by FabGuard and the BuddyCheckpoint
/// mirror verification.
std::uint32_t crcOfFabValidRegion(const amr::MultiFab& mf, int fab);

/// Detection layer of the SDC subsystem (docs/resilience.md §6): CRC32
/// stamps over every fab's *valid* region plus per-level conserved-sum
/// ABFT digests, both taken while the state is known-good (end of step,
/// post-regrid, post-restore), and verified before long-idle state is read
/// again. A verify runs the cheap digest screen first, then the CRC scan,
/// which localizes corruption to a fab so the RecoveryLadder's first rung
/// can repair it in place from the retained copy instead of rolling the
/// whole step back.
///
/// The guard also retains a verified copy of the stamped hierarchy — the
/// restore source for fab-granular repair. The copy is itself CRC-checked
/// before any byte of it overwrites live state (a corrupted restore source
/// escalates the ladder instead of being trusted; same policy as the
/// BuddyCheckpoint mirror).
class FabGuard {
public:
    struct Stats {
        std::int64_t stamps = 0;
        std::int64_t verifies = 0;          ///< full verify passes
        std::int64_t digestMismatches = 0;  ///< levels failing the ABFT screen
        std::int64_t crcMismatches = 0;     ///< fabs failing the CRC scan
        std::int64_t fabRestores = 0;       ///< fab-granular repairs served
        std::int64_t dualChecks = 0;        ///< sampled dual executions run
        std::int64_t dualMismatches = 0;    ///< kernel outputs caught corrupt
    };

    /// Stamp levels 0..finestLevel: per-fab CRC32 + per-level conserved
    /// sums, and refresh the retained restore copies.
    void stamp(const std::vector<amr::MultiFab>& U, int finestLevel);

    bool stamped() const { return stamped_; }
    int finestLevel() const { return finest_; }

    /// True when the stamped layout (level count, fab count, valid boxes)
    /// still matches `U` — stamps predating a regrid are meaningless and a
    /// verify against them is skipped.
    bool layoutMatches(const std::vector<amr::MultiFab>& U,
                       int finestLevel) const;

    /// Cheap ABFT screen: recompute each level's conserved sums and compare
    /// bitwise against the stamped digests. True = all clean.
    bool digestClean(const std::vector<amr::MultiFab>& U, int finestLevel);

    /// Full verify: CRC-scan every stamped fab, return the corrupted ones.
    /// Empty when unstamped or the layout changed.
    std::vector<GuardFinding> verify(const std::vector<amr::MultiFab>& U,
                                     int finestLevel);

    /// Fab-granular repair: CRC-check the retained copy of (level, fab) and,
    /// if intact, copy its valid region bitwise over the live fab. False
    /// when the restore source is itself corrupt — escalate the ladder.
    bool restoreFab(std::vector<amr::MultiFab>& U, int level, int fab);

    /// Forget all stamps and retained copies (layout about to change).
    void invalidate();

    /// Bytes of valid-region state under guard after the last stamp.
    std::int64_t guardedBytes() const { return guardedBytes_; }

    const Stats& stats() const { return stats_; }
    Stats& stats() { return stats_; }

    /// Which fab the dual-execution pass re-runs for (step, stage, level):
    /// a fixed pseudo-rotation so every fab is eventually sampled and tests
    /// can aim an armed kernel flip at the sampled fab.
    static int sampledFab(int step, int stage, int level, int numFabs);

    /// Bitwise comparison of two fabs over `region` (dual-execution check).
    static bool bitwiseEqual(const amr::FArrayBox& a, const amr::FArrayBox& b,
                             const amr::Box& region, int ncomp);

    /// Double-fault injection hook for tests: flip one mantissa bit in the
    /// retained copy of (level, fab) so the next restoreFab finds its
    /// source corrupt and the ladder has to escalate.
    void corruptRetained(int level, int fab);

private:
    std::vector<std::vector<std::uint32_t>> crcs_; ///< [level][fab]
    std::vector<std::vector<amr::Real>> digests_;  ///< [level][comp]
    std::vector<amr::MultiFab> copies_;            ///< retained restore source
    std::int64_t guardedBytes_ = 0;
    int finest_ = -1;
    bool stamped_ = false;
    Stats stats_;
};

} // namespace crocco::resilience
