#include "resilience/SdcInjector.hpp"

#include <cassert>
#include <cstring>

namespace crocco::resilience {

namespace {

/// Flip one bit of a double in place. The injectors restrict themselves to
/// mantissa bits (0..51): the value stays finite, so the flip is *silent*
/// — StateValidator's NaN/Inf screen never sees it and only the guard
/// machinery can.
void flipBit(amr::Real& v, int bit) {
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof u);
    u ^= (std::uint64_t{1} << bit);
    std::memcpy(&v, &u, sizeof u);
}

int draw(std::mt19937_64& rng, int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
}

} // namespace

SdcInjector::SdcInjector(std::uint64_t seed) : rng_(seed) {}

void SdcInjector::setColdRate(double rate) {
    assert(rate >= 0.0 && rate <= 1.0);
    coldRate_ = rate;
}

void SdcInjector::schedule(int firstStep, int period) {
    assert(period > 0);
    schedFirst_ = firstStep;
    schedPeriod_ = period;
}

void SdcInjector::armColdFlip(int step, int level, int fab) {
    coldArms_.push_back({step, level, fab, /*ghost=*/false, /*spent=*/false});
}

void SdcInjector::armGhostFlip(int step, int level, int fab) {
    coldArms_.push_back({step, level, fab, /*ghost=*/true, /*spent=*/false});
}

void SdcInjector::armStageFlip(int step, int stage, int level, int fab) {
    stageArms_.push_back({step, stage, level, fab, /*spent=*/false});
}

void SdcInjector::flipValidBit(amr::MultiFab& mf, int fab) {
    const amr::Box& vb = mf.validBox(fab);
    const amr::IntVect p(draw(rng_, vb.smallEnd()[0], vb.bigEnd()[0]),
                         draw(rng_, vb.smallEnd()[1], vb.bigEnd()[1]),
                         draw(rng_, vb.smallEnd()[2], vb.bigEnd()[2]));
    const int comp = draw(rng_, 0, mf.nComp() - 1);
    const int bit = draw(rng_, 0, 51);
    flipBit(mf.fab(fab)(p, comp), bit);
}

void SdcInjector::flipGhostBit(amr::MultiFab& mf, int fab) {
    if (mf.nGrow() == 0) { // no ghost layer: degrade to a valid-region flip
        flipValidBit(mf, fab);
        return;
    }
    // Pick a cell of the low-x ghost slab: in the allocated region, outside
    // the stamped valid box.
    const amr::Box gb = mf.grownBox(fab);
    const amr::Box& vb = mf.validBox(fab);
    const amr::IntVect p(draw(rng_, gb.smallEnd()[0], vb.smallEnd()[0] - 1),
                         draw(rng_, vb.smallEnd()[1], vb.bigEnd()[1]),
                         draw(rng_, vb.smallEnd()[2], vb.bigEnd()[2]));
    const int comp = draw(rng_, 0, mf.nComp() - 1);
    const int bit = draw(rng_, 0, 51);
    flipBit(mf.fab(fab)(p, comp), bit);
}

bool SdcInjector::corruptCold(int step, std::vector<amr::MultiFab>& U,
                              int finestLevel) {
    if (!enabled_) return false;
    bool fired = false;
    for (ColdArm& arm : coldArms_) {
        if (arm.spent || arm.step != step) continue;
        arm.spent = true;
        if (arm.level < 0 || arm.level > finestLevel) continue;
        amr::MultiFab& mf = U[static_cast<std::size_t>(arm.level)];
        if (arm.fab < 0 || arm.fab >= mf.numFabs()) continue;
        if (arm.ghost) {
            flipGhostBit(mf, arm.fab);
            ++stats_.ghostFlips;
        } else {
            flipValidBit(mf, arm.fab);
            ++stats_.coldFlips;
        }
        fired = true;
    }
    if (schedPeriod_ > 0 && step >= schedFirst_ &&
        (step - schedFirst_) % schedPeriod_ == 0) {
        amr::MultiFab& mf = U[0];
        flipValidBit(mf, draw(rng_, 0, mf.numFabs() - 1));
        ++stats_.coldFlips;
        fired = true;
    }
    if (coldRate_ > 0.0) {
        std::uniform_real_distribution<double> uni(0.0, 1.0);
        for (int lev = 0; lev <= finestLevel; ++lev) {
            amr::MultiFab& mf = U[static_cast<std::size_t>(lev)];
            for (int f = 0; f < mf.numFabs(); ++f) {
                ++stats_.decisions;
                if (uni(rng_) < coldRate_) {
                    flipValidBit(mf, f);
                    ++stats_.coldFlips;
                    fired = true;
                }
            }
        }
    }
    return fired;
}

bool SdcInjector::corruptStage(int step, int stage, int level,
                               amr::MultiFab& dU) {
    if (!enabled_) return false;
    bool fired = false;
    for (StageArm& arm : stageArms_) {
        if (arm.spent || arm.step != step || arm.stage != stage ||
            arm.level != level)
            continue;
        arm.spent = true;
        if (arm.fab < 0 || arm.fab >= dU.numFabs()) continue;
        flipValidBit(dU, arm.fab);
        ++stats_.stageFlips;
        fired = true;
    }
    return fired;
}

} // namespace crocco::resilience
