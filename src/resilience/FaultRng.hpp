#pragma once

#include <cstdint>
#include <string_view>

namespace crocco::resilience {

/// One master seed, many independent decision streams. Every injector in
/// the fault stack (FaultInjector cell faults, CommFaults message faults,
/// SdcInjector bit flips) draws from its *own* named substream derived
/// from the master seed, so enabling or re-ordering one injector never
/// shifts another's decisions — the property the PR 6 soak digests pin.
///
/// The derivation is a splitmix64 finalizer over (master ^ FNV-1a(name)):
/// cheap, stateless, and stable across platforms. Substreams are not
/// cryptographically independent, but mt19937_64 engines seeded from
/// well-separated 64-bit values are more than decorrelated enough for
/// fault-injection schedules.
class FaultRng {
public:
    explicit FaultRng(std::uint64_t masterSeed = 0xC40CC0DEull)
        : master_(masterSeed) {}

    std::uint64_t masterSeed() const { return master_; }

    /// Seed for the named substream: deterministic in (master, name) only.
    std::uint64_t seedFor(std::string_view name) const {
        return substreamSeed(master_, name);
    }

    static std::uint64_t substreamSeed(std::uint64_t master,
                                       std::string_view name) {
        return splitmix64(master ^ fnv1a(name));
    }

    /// Conventional substream names used by the solver's injectors.
    static constexpr std::string_view kCellStream = "fault.cell";
    static constexpr std::string_view kCommStream = "fault.comm";
    static constexpr std::string_view kSdcStream = "fault.sdc";

private:
    static std::uint64_t fnv1a(std::string_view s) {
        std::uint64_t h = 0xcbf29ce484222325ull;
        for (char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 0x100000001b3ull;
        }
        return h;
    }

    static std::uint64_t splitmix64(std::uint64_t x) {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

    std::uint64_t master_;
};

} // namespace crocco::resilience
