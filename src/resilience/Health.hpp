#pragma once

#include "amr/IntVect.hpp"

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace crocco::resilience {

/// Per-step guard policy of the solver driver (see docs/resilience.md):
/// after every RK3 step the conserved state is scanned for corruption and,
/// on failure, the step is rolled back and retried with a smaller dt.
struct GuardConfig {
    bool enabled = true;       ///< scan state + snapshot/rollback every step
    int maxRetries = 3;        ///< rollback/retry attempts before giving up
    double dtBackoff = 0.5;    ///< dt multiplier applied on each retry
    int maxFaultsReported = 8; ///< offending cells kept in a HealthReport
};

/// What a state scan found wrong with one cell.
enum class FaultKind {
    NotANumber,       ///< NaN in any conserved component
    Infinite,         ///< +-Inf in any conserved component
    NegativeDensity,  ///< rho <= 0
    NegativePressure, ///< decoded p <= 0 (finite but unphysical)
};

const char* toString(FaultKind k);

/// One offending cell, addressed the way the solver stores state: AMR
/// level, fab index within the level's MultiFab, cell index, component.
struct CellFault {
    int level = 0;
    int fabIndex = 0;
    amr::IntVect cell{};
    int comp = 0;
    FaultKind kind = FaultKind::NotANumber;
    double value = 0.0;
};

/// Result of a StateValidator scan over one level or a whole hierarchy.
/// `faultCount` counts every fault seen; `faults` keeps only the first
/// `GuardConfig::maxFaultsReported` so a fully corrupted field cannot blow
/// up the report itself.
struct HealthReport {
    std::int64_t cellsScanned = 0;
    std::int64_t faultCount = 0;
    std::vector<CellFault> faults;

    bool healthy() const { return faultCount == 0; }

    /// Merge another level's report into this one (keeps the fault cap).
    void merge(const HealthReport& other, int maxReported);

    /// Human-readable one-or-few-line summary for logs and error messages.
    std::string describe() const;
};

/// Thrown by the solver when a step still fails its health check after the
/// guard's rollback/retry budget is exhausted. The solver state has been
/// restored to the last healthy (pre-step) snapshot when this is thrown, so
/// a caller may checkpoint-recover and continue.
class SolverDivergence : public std::runtime_error {
public:
    SolverDivergence(int step, double dt, HealthReport report);

    int step() const { return step_; }
    double dt() const { return dt_; }
    const HealthReport& report() const { return report_; }

private:
    int step_;
    double dt_;
    HealthReport report_;
};

/// Thrown when a checkpoint fails integrity verification: truncated level
/// file, CRC mismatch, or inconsistent header metadata. Derives from
/// runtime_error so pre-existing callers that catch that still work.
class CheckpointCorruption : public std::runtime_error {
public:
    explicit CheckpointCorruption(const std::string& what)
        : std::runtime_error(what) {}
};

} // namespace crocco::resilience
