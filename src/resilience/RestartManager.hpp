#pragma once

#include <functional>
#include <string>
#include <vector>

namespace crocco::resilience {

/// Rotating-checkpoint manager: keeps the last K checkpoints under a root
/// directory, verifies integrity (header + per-level CRC32) before trusting
/// one, and falls back to the previous good checkpoint when the newest is
/// corrupt. Deliberately decoupled from the solver through read/write
/// callbacks so it layers over core::CroccoAmr without a dependency cycle;
/// mirrors the role checkpoint/restart plays as a first-class subsystem in
/// AMReX.
class RestartManager {
public:
    /// Callback that writes or reads one checkpoint at `dir`.
    using CheckpointFn = std::function<void(const std::string& dir)>;

    explicit RestartManager(std::string root, int keepLast = 2);

    const std::string& root() const { return root_; }
    int keepLast() const { return keepLast_; }

    /// Canonical directory for a step: <root>/chk000042.
    std::string dirFor(int step) const;

    /// Write one checkpoint for `step` through `writer` (which must be
    /// atomic — CroccoAmr::writeCheckpoint stages into a tmp dir and
    /// renames), then prune to the newest keepLast(). Returns the directory
    /// written.
    std::string write(int step, const CheckpointFn& writer);

    /// Checkpoint directories currently present, newest step first.
    std::vector<std::string> available() const;

    /// Step number encoded in a checkpoint directory name, or -1.
    static int stepOf(const std::string& dir);

    /// Fast integrity check of one checkpoint: the header parses and every
    /// recorded per-level CRC32/length matches the level file on disk.
    /// Version-1 checkpoints carry no checksums and pass vacuously (their
    /// structural checks happen at read time). Never throws; on failure
    /// returns false and, when `why` is non-null, explains.
    static bool verify(const std::string& dir, std::string* why = nullptr);

    /// Restore the newest checkpoint that passes verify() *and* loads
    /// cleanly through `reader`; corrupt or unreadable ones are skipped
    /// with their reason collected. Returns the directory restored; throws
    /// std::runtime_error listing every failure when none restores.
    std::string restoreLatest(const CheckpointFn& reader) const;

private:
    std::string root_;
    int keepLast_;
};

} // namespace crocco::resilience
